//! The magnitude-range certification lint.
//!
//! The lazy-reduction tower in `crates/pairing` (DESIGN.md §11) breaks
//! the "always reduced" representation invariant on purpose: values
//! flow through `add_unreduced`/`mul_unreduced` chains and are folded
//! back below `p` by one deferred Montgomery pass. That is only sound
//! while every intermediate stays inside the limb headroom the modulus
//! leaves — one `add_unreduced` too many silently wraps the top limb,
//! release builds don't panic, and small-number tests never notice.
//!
//! This pass certifies those chains statically. Every field value gets
//! a symbolic **magnitude class**: `<Np` (narrow, `N` units of `p` in
//! one limb vector) or `<Npp` (wide, `N` units of `p²` in a
//! double-width accumulator). The caps come from the committed
//! `montgomery_field!` invocations themselves: a modulus of bit length
//! `b` over `n` limbs leaves `h = 64·n − b` headroom bits, so narrow
//! classes may reach `2^h` and wide classes the largest power of two
//! `W ≤ 2^2h` with `W·p² + p·2^64n < 2^128n` (the REDC rounds add up
//! to `p·2^64n` before dividing, so the accumulator needs that much
//! slack on top of the product itself). For BLS12-381 that is `8` and
//! `64`; for the thin 255-bit `Fr` it is `2` and `2` — which is why no
//! lazy `Fr` chains exist.
//!
//! Contracts are declared as comments on the lazy entry points:
//!
//! ```text
//! // range: <p              inputs canonical, output canonical
//! // range: <2p -> <16pp    inputs below 2p, output below 16p²
//! ```
//!
//! The lint propagates classes through each annotated body using the
//! transfer functions of the primitives (`add_unreduced` sums classes,
//! `mul_unreduced` multiplies into the wide lattice, `wide_sub_offset`
//! adds its `k·p²` headroom offset and requires `k` to cover the
//! subtrahend, `montgomery_reduce` returns to canonical) and fails the
//! gate on: a class above a cap, a subtrahend without headroom, an
//! unreduced value escaping into an eager or unknown operation, a
//! contract that disagrees with what the body computes (stale), and a
//! lazy call inside a function that declares no contract at all.
//!
//! Deliberate over-approximations: classes are powers-free integers
//! (no term cancellation), every struct literal takes the worst
//! component, and annotated bodies must be straight-line — control
//! flow around unreduced values is itself a finding.
//!
//! A reviewed site is suppressed with `// range-ok: <reason>`; a bare
//! marker is itself a finding, like every other suppression in this
//! gate.

use std::collections::HashMap;
use std::fmt;

use crate::lexer::{self, is_ident_char};
use crate::parser::{split_top_level, FnItem, ParsedFile};
use crate::{suppression_near, Finding, Suppression};

/// The suppression marker for this lint.
pub const ALLOW_MARKER: &str = "range-ok:";

/// The contract marker: a comment line `// range: <class> [-> <class>]`
/// directly above a declaration (doc comments `///` never match).
const CONTRACT_MARKER: &str = "// range:";

/// The lazy intrinsics: their bodies *are* the reviewed carry/headroom
/// implementations, so the lint applies their transfer functions at
/// call sites instead of analyzing them against themselves.
pub const INTRINSIC_FNS: &[&str] = &[
    "add_unreduced",
    "sub_unreduced",
    "mul_unreduced",
    "reduce",
    "wide_add",
    "wide_sub",
    "wide_sub_offset",
    "montgomery_reduce",
    "wide_add2",
    "wide_sub2",
    "wide_nonresidue2",
    "montgomery_reduce2",
    "mul_unreduced_x3",
];

/// Extension-field combinators with exact symbolic transfers *and*
/// lint-checked bodies: call sites get the precise class (e.g.
/// `mul_unreduced2` yields `max(Na·Nb + 4, 4·Na·Nb)` for its internal
/// `4p²` offset and operand sums), while the declared contract is
/// verified against the body like any other annotation.
pub const SYMBOLIC_FNS: &[&str] = &["add_unreduced2", "sub_unreduced2", "mul_unreduced2"];

/// A symbolic magnitude class: `Narrow(n)` is a single-width value
/// below `n·p`, `Wide(n)` a double-width accumulator below `n·p²`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Magnitude {
    /// Single-width, below `n·p`. Canonical values are `Narrow(1)`.
    Narrow(u64),
    /// Double-width, below `n·p²`.
    Wide(u64),
}

impl fmt::Display for Magnitude {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Magnitude::Narrow(1) => write!(f, "<p"),
            Magnitude::Narrow(n) => write!(f, "<{n}p"),
            Magnitude::Wide(n) => write!(f, "<{n}pp"),
        }
    }
}

/// Headroom caps of one `montgomery_field!` invocation.
#[derive(Debug)]
pub(crate) struct FieldCaps {
    /// The field type name (`Fp`, `Fr`).
    pub(crate) name: String,
    /// Largest sound narrow class (`2^h`).
    pub(crate) narrow: u64,
    /// Largest sound wide class (power of two with REDC slack).
    pub(crate) wide: u64,
}

/// A declared `// range:` contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Contract {
    /// Class every field-typed input is assumed to have.
    pub(crate) input: Magnitude,
    /// Class the output is declared to have.
    pub(crate) output: Magnitude,
}

/// Runs the magnitude-range analysis over the parsed scope. Only the
/// pairing crate (and bare-named unit-test inputs) is considered: the
/// lazy primitives live there, and name collisions elsewhere (iterator
/// `reduce`, HMAC `mac`) must not leak findings into other crates.
pub fn analyze(files: &[ParsedFile]) -> Vec<Finding> {
    // The simd island is excluded: its kernels are loop-shaped (not
    // straight-line lazy chains) and are certified by the `backend`
    // lint instead, which reuses this module's contract parser to
    // check the island's declared `// range:` classes against the caps.
    let scope: Vec<&ParsedFile> = files
        .iter()
        .filter(|f| {
            (f.path.starts_with("crates/pairing/") || !f.path.starts_with("crates/"))
                && !f.path.starts_with("crates/pairing/src/simd/")
        })
        .collect();
    let caps = scan_field_caps(&scope);

    // Pass 1: collect declared contracts (name-keyed, like call sites
    // resolve them) and report conflicts/parse errors.
    let mut raw_findings: Vec<(String, usize, String)> = Vec::new();
    let mut contracts: HashMap<String, (Contract, String)> = HashMap::new();
    for file in &scope {
        for item in &file.fns {
            if item.is_test {
                continue;
            }
            match contract_for(&file.raw_lines, item.decl_line) {
                None => {}
                Some(Err(bad)) => raw_findings.push((
                    file.path.clone(),
                    item.decl_line,
                    format!(
                        "`{}` has an unparseable magnitude contract: {bad}",
                        item.name
                    ),
                )),
                Some(Ok(c)) => match contracts.get(&item.name) {
                    Some((prev, at)) if *prev != c => raw_findings.push((
                        file.path.clone(),
                        item.decl_line,
                        format!(
                            "`{}` declares contract `{} -> {}` but `{}` at {at} declares \
                             `{} -> {}`: call sites resolve contracts by name, so they must \
                             agree",
                            item.name, c.input, c.output, item.name, prev.input, prev.output
                        ),
                    )),
                    Some(_) => {}
                    None => {
                        contracts.insert(
                            item.name.clone(),
                            (c, format!("{}:{}", file.path, item.decl_line)),
                        );
                    }
                },
            }
        }
    }
    let table: HashMap<String, Contract> = contracts
        .iter()
        .map(|(k, (c, _))| (k.clone(), *c))
        .collect();

    // Pass 2: per function — missing-annotation rule for unannotated
    // callers of lazy primitives, body certification for annotated ones.
    for file in &scope {
        for item in &file.fns {
            if item.is_test || INTRINSIC_FNS.contains(&item.name.as_str()) {
                continue;
            }
            let contract = match contract_for(&file.raw_lines, item.decl_line) {
                Some(Ok(c)) => Some(c),
                Some(Err(_)) => continue, // already reported above
                None => None,
            };
            let Some(contract) = contract else {
                if let Some(call) = item
                    .calls
                    .iter()
                    .filter(|c| is_lazy_name(&c.callee))
                    .min_by_key(|c| c.line)
                {
                    raw_findings.push((
                        file.path.clone(),
                        call.line,
                        format!(
                            "`{}` calls lazy primitive `{}` but declares no `// range:` \
                             contract, so its magnitude chain is uncertified",
                            item.name, call.callee
                        ),
                    ));
                }
                continue;
            };
            let Some(field) = caps_for(&caps, item.owner.as_deref()) else {
                raw_findings.push((
                    file.path.clone(),
                    item.decl_line,
                    format!(
                        "`{}` declares a magnitude contract but no `montgomery_field!` \
                         invocation is in scope to derive headroom caps from",
                        item.name
                    ),
                ));
                continue;
            };
            let mut eval = Eval {
                fn_name: &item.name,
                caps: field,
                contracts: &table,
                env: HashMap::new(),
                findings: Vec::new(),
                line: item.decl_line,
                lanes: None,
            };
            eval.certify_body(item, contract);
            for (line, msg) in eval.findings {
                raw_findings.push((file.path.clone(), line, msg));
            }
        }
    }

    // Suppression filter, mirroring the other lints.
    let mut findings = Vec::new();
    for (path, line, message) in raw_findings {
        let raw: Vec<&str> = scope
            .iter()
            .find(|f| f.path == path)
            .map(|f| f.raw_lines.iter().map(String::as_str).collect())
            .unwrap_or_default();
        match suppression_near(&raw, line, ALLOW_MARKER) {
            Suppression::Justified => {}
            Suppression::MissingReason => findings.push(Finding {
                file: path,
                line,
                lint: "range",
                message: format!("{message} (range-ok present but gives no reason)"),
            }),
            Suppression::None => findings.push(Finding {
                file: path,
                line,
                lint: "range",
                message,
            }),
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

/// True for names whose presence in a body means the function handles
/// unreduced values and therefore needs a contract.
fn is_lazy_name(name: &str) -> bool {
    INTRINSIC_FNS.contains(&name) || SYMBOLIC_FNS.contains(&name)
}

// ---------------------------------------------------------------------
// Headroom caps from the committed montgomery_field! invocations.
// ---------------------------------------------------------------------

/// Scans the scope's scrubbed source for `montgomery_field!(Name, n,
/// [limbs])` invocations and derives each field's caps.
pub(crate) fn scan_field_caps(scope: &[&ParsedFile]) -> Vec<FieldCaps> {
    let mut out: Vec<FieldCaps> = Vec::new();
    for file in scope {
        let scrubbed = lexer::scrub(&file.raw_lines.join("\n"));
        let mut from = 0;
        while let Some(pos) = scrubbed[from..].find("montgomery_field!") {
            let start = from + pos + "montgomery_field!".len();
            from = start;
            if let Some(caps) = parse_invocation(&scrubbed[start..]) {
                if !out.iter().any(|c| c.name == caps.name) {
                    out.push(caps);
                }
            }
        }
    }
    out
}

/// Parses one invocation tail `( Name , n , [limb, ...] )`.
fn parse_invocation(text: &str) -> Option<FieldCaps> {
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() && chars[i].is_whitespace() {
        i += 1;
    }
    if chars.get(i) != Some(&'(') {
        return None;
    }
    i += 1;
    // Field name: the first identifier (scrubbed doc attributes leave
    // only whitespace before it).
    while i < chars.len() && !is_ident_char(chars[i]) {
        if chars[i] == ')' {
            return None;
        }
        i += 1;
    }
    let name_start = i;
    while i < chars.len() && is_ident_char(chars[i]) {
        i += 1;
    }
    let name: String = chars[name_start..i].iter().collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    // Limb count.
    while i < chars.len() && !chars[i].is_ascii_digit() {
        i += 1;
    }
    let n_start = i;
    while i < chars.len() && chars[i].is_ascii_digit() {
        i += 1;
    }
    let n: usize = chars[n_start..i].iter().collect::<String>().parse().ok()?;
    // Limb array.
    let open = (i..chars.len()).find(|&j| chars[j] == '[')?;
    let close = (open..chars.len()).find(|&j| chars[j] == ']')?;
    let body: String = chars[open + 1..close].iter().collect();
    let mut limbs = Vec::new();
    for part in body.split(',') {
        let t: String = part.trim().replace('_', "");
        if t.is_empty() {
            continue;
        }
        let v = match t.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).ok()?,
            None => t.parse().ok()?,
        };
        limbs.push(v);
    }
    if limbs.len() != n || n == 0 {
        return None;
    }
    let bits = bit_len(&limbs);
    let headroom = (64 * n).checked_sub(bits)?;
    let h = headroom.min(16) as u32;
    let narrow = 1u64 << h;
    let wide = wide_cap(&limbs, h);
    Some(FieldCaps { name, narrow, wide })
}

/// Bit length of a little-endian limb value.
fn bit_len(limbs: &[u64]) -> usize {
    for (i, &l) in limbs.iter().enumerate().rev() {
        if l != 0 {
            return i * 64 + (64 - l.leading_zeros() as usize);
        }
    }
    0
}

/// The largest power-of-two wide cap `W ≤ 2^2h` with
/// `W·p² + p·2^(64n) < 2^(128n)` — the REDC rounds add up to
/// `p·2^(64n)` to the accumulator before dividing, so the certified
/// bound must leave that much slack in `2n` limbs.
fn wide_cap(modulus: &[u64], h: u32) -> u64 {
    let n = modulus.len();
    let p2 = big_mul(modulus, modulus);
    let mut cap = 1u64 << (2 * h).min(32);
    while cap > 1 {
        // t = cap·p² + p·2^(64n), checked to fit in 2n limbs.
        let mut t = big_scale(&p2, cap);
        for (i, &l) in modulus.iter().enumerate() {
            big_add_at(&mut t, l, n + i);
        }
        if t.iter().skip(2 * n).all(|&l| l == 0) {
            return cap;
        }
        cap /= 2;
    }
    1
}

/// Schoolbook product of two little-endian limb values.
fn big_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut t = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let v = u128::from(t[i + j]) + u128::from(ai) * u128::from(bj) + carry;
            t[i + j] = v as u64;
            carry = v >> 64;
        }
        t[i + b.len()] = carry as u64;
    }
    t
}

/// Scales a limb value by a small factor (one guard limb appended).
fn big_scale(a: &[u64], k: u64) -> Vec<u64> {
    let mut t = vec![0u64; a.len() + 1];
    let mut carry = 0u128;
    for (i, &ai) in a.iter().enumerate() {
        let v = u128::from(ai) * u128::from(k) + carry;
        t[i] = v as u64;
        carry = v >> 64;
    }
    t[a.len()] = carry as u64;
    t
}

/// Adds `limb` into `t[at]`, propagating the carry.
fn big_add_at(t: &mut Vec<u64>, limb: u64, at: usize) {
    if at >= t.len() {
        t.resize(at + 1, 0);
    }
    let mut carry = u128::from(limb);
    let mut i = at;
    while carry != 0 {
        if i >= t.len() {
            t.push(0);
        }
        let v = u128::from(t[i]) + carry;
        t[i] = v as u64;
        carry = v >> 64;
        i += 1;
    }
}

/// Resolves the caps governing a function: longest field-name prefix of
/// the owner type (`Fp2Wide` → `Fp`), else the unique field with at
/// least three headroom bits (the only kind lazy chains exist for).
fn caps_for<'a>(caps: &'a [FieldCaps], owner: Option<&str>) -> Option<&'a FieldCaps> {
    if let Some(o) = owner {
        if let Some(best) = caps
            .iter()
            .filter(|c| o.starts_with(&c.name))
            .max_by_key(|c| c.name.len())
        {
            return Some(best);
        }
    }
    let mut roomy = caps.iter().filter(|c| c.narrow >= 8);
    match (roomy.next(), roomy.next()) {
        (Some(one), None) => Some(one),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Contract comments.
// ---------------------------------------------------------------------

/// Finds the `// range:` contract attached to the declaration at
/// `decl_line` (1-based): on the line itself or in the contiguous run
/// of comment/attribute lines directly above.
pub(crate) fn contract_for(
    raw_lines: &[String],
    decl_line: usize,
) -> Option<Result<Contract, String>> {
    let mut line = decl_line;
    loop {
        let text = raw_lines.get(line.checked_sub(1)?)?;
        let trimmed = text.trim_start();
        if line != decl_line && !trimmed.starts_with("//") && !trimmed.starts_with("#[") {
            return None;
        }
        if let Some(pos) = text.find(CONTRACT_MARKER) {
            // `/// ... range:` doc text does not start a comment here.
            let spec = text[pos + CONTRACT_MARKER.len()..].trim();
            return Some(parse_contract(spec));
        }
        line = line.checked_sub(1)?;
        if line == 0 {
            return None;
        }
    }
}

/// Parses `<class>` or `<class> -> <class>`.
fn parse_contract(spec: &str) -> Result<Contract, String> {
    let (input, output) = match spec.split_once("->") {
        Some((i, o)) => (parse_class(i.trim())?, parse_class(o.trim())?),
        None => (Magnitude::Narrow(1), parse_class(spec)?),
    };
    if matches!(input, Magnitude::Wide(_)) {
        return Err(format!(
            "`{input}` cannot be an input class: wide accumulators never cross \
             annotated entry points"
        ));
    }
    Ok(Contract { input, output })
}

/// Parses one class token: `<p`, `<4p`, `<16pp`.
fn parse_class(tok: &str) -> Result<Magnitude, String> {
    let body = tok
        .strip_prefix('<')
        .ok_or_else(|| format!("`{tok}` does not start with `<`"))?;
    let digits: String = body.chars().take_while(char::is_ascii_digit).collect();
    let n: u64 = if digits.is_empty() {
        1
    } else {
        digits
            .parse()
            .map_err(|_| format!("`{tok}` has an out-of-range class"))?
    };
    match &body[digits.len()..] {
        "p" => Ok(Magnitude::Narrow(n)),
        "pp" => Ok(Magnitude::Wide(n)),
        other => Err(format!("`{tok}` ends in `{other}`, expected `p` or `pp`")),
    }
}

// ---------------------------------------------------------------------
// The statement/expression evaluator.
// ---------------------------------------------------------------------

struct Eval<'a> {
    fn_name: &'a str,
    caps: &'a FieldCaps,
    contracts: &'a HashMap<String, Contract>,
    env: HashMap<String, Magnitude>,
    findings: Vec<(usize, String)>,
    line: usize,
    /// Per-lane classes of the most recent packed (`_x3`) call, so a
    /// destructuring `let [a, b, c] = ...` binds each lane precisely
    /// instead of smearing the worst lane over all three names.
    lanes: Option<Vec<Magnitude>>,
}

impl Eval<'_> {
    /// Certifies one annotated body against its contract.
    fn certify_body(&mut self, item: &FnItem, contract: Contract) {
        for p in &item.params {
            if !p.name.is_empty() {
                self.env.insert(p.name.clone(), contract.input);
            }
        }
        let inner = item
            .body
            .trim()
            .strip_prefix('{')
            .and_then(|b| b.strip_suffix('}'))
            .unwrap_or(&item.body)
            .to_owned();
        let mut tail: Option<Magnitude> = None;
        for (rel, stmt) in split_statements(&inner) {
            self.line = item.body_line + rel;
            let t = stmt.trim();
            if t.is_empty() || is_macro_stmt(t) {
                continue;
            }
            if ["if ", "if(", "for ", "while ", "loop ", "loop{", "match "]
                .iter()
                .any(|kw| t.starts_with(kw))
                || t == "loop"
            {
                self.report(format!(
                    "control flow inside `{}`'s lazy-annotated body is outside the \
                     magnitude model; keep certified chains straight-line",
                    self.fn_name
                ));
                tail = None;
                continue;
            }
            if let Some(rest) = t.strip_prefix("let ") {
                self.bind_let(rest);
                tail = None;
            } else {
                tail = Some(self.eval(t));
            }
        }
        self.line = item.decl_line;
        match tail {
            Some(out) if out != contract.output => self.report(format!(
                "stale contract on `{}`: declared output `{}` but the body computes `{out}`",
                self.fn_name, contract.output
            )),
            Some(_) => {}
            None => self.report(format!(
                "`{}` is annotated but its body has no tail expression to certify",
                self.fn_name
            )),
        }
    }

    /// Handles `let [mut] <pat> [: ty] = <expr>`.
    fn bind_let(&mut self, rest: &str) {
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        let Some(eq) = top_level_eq(rest) else {
            return;
        };
        let (lhs, rhs) = rest.split_at(eq);
        let rhs = &rhs[1..];
        self.lanes = None;
        let class = self.eval(rhs);
        let lanes = self.lanes.take();
        let pat = lhs.split(':').next().unwrap_or(lhs);
        let names: Vec<String> = pat
            .split(|c: char| !is_ident_char(c))
            .filter(|w| !w.is_empty() && *w != "_" && *w != "mut" && *w != "ref")
            .map(str::to_owned)
            .collect();
        // A slice pattern over a packed call binds each lane to its own
        // class; any other shape falls back to the worst-lane class (a
        // sound over-approximation).
        if let Some(lanes) = lanes {
            if pat.trim_start().starts_with('[') {
                if names.len() == lanes.len() {
                    for (name, lane) in names.iter().zip(lanes) {
                        self.env.insert(name.clone(), lane);
                    }
                    return;
                }
                self.report(format!(
                    "packed call in `{}` produces {} lanes but the pattern binds {} \
                     names; bind every lane so each keeps its own magnitude class",
                    self.fn_name,
                    lanes.len(),
                    names.len()
                ));
            }
        }
        for name in names {
            self.env.insert(name, class);
        }
    }

    fn report(&mut self, message: String) {
        self.findings.push((self.line, message));
    }

    /// Evaluates one expression to a magnitude class.
    fn eval(&mut self, text: &str) -> Magnitude {
        let t = text.trim().trim_start_matches(['&', '*', ' ']);
        let chars: Vec<char> = t.chars().collect();
        let (mut class, mut pos) = self.eval_head(&chars);
        loop {
            while pos < chars.len() && chars[pos].is_whitespace() {
                pos += 1;
            }
            match chars.get(pos) {
                Some('.') => {
                    let name_start = pos + 1;
                    let mut j = name_start;
                    while j < chars.len() && is_ident_char(chars[j]) {
                        j += 1;
                    }
                    if j == name_start {
                        break;
                    }
                    let name: String = chars[name_start..j].iter().collect();
                    let mut k = j;
                    while k < chars.len() && chars[k].is_whitespace() {
                        k += 1;
                    }
                    if chars.get(k) == Some(&'(') {
                        let close = match_paren(&chars, k).unwrap_or(chars.len() - 1);
                        let args_text: String = chars[k + 1..close].iter().collect();
                        let args: Vec<String> = split_top_level(&args_text)
                            .into_iter()
                            .map(|a| a.trim().to_owned())
                            .filter(|a| !a.is_empty())
                            .collect();
                        class = self.apply(&name, class, &args);
                        pos = close + 1;
                    } else {
                        // Field access (`.c0`, `.0`): class-preserving.
                        pos = j;
                    }
                }
                Some('?') => pos += 1,
                _ => break,
            }
        }
        class
    }

    /// Evaluates the head of an expression: a parenthesized group, a
    /// struct literal, a path call, or a plain binding.
    fn eval_head(&mut self, chars: &[char]) -> (Magnitude, usize) {
        if chars.first() == Some(&'(') {
            let close = match_paren(chars, 0).unwrap_or(chars.len() - 1);
            let inner: String = chars[1..close].iter().collect();
            return (self.eval(&inner), close + 1);
        }
        // Leading path: ident (:: ident)*
        let mut i = 0;
        let mut last: String;
        loop {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            if i == start {
                return (Magnitude::Narrow(1), i);
            }
            last = chars[start..i].iter().collect();
            if chars.get(i) == Some(&':') && chars.get(i + 1) == Some(&':') {
                i += 2;
            } else {
                break;
            }
        }
        let mut k = i;
        while k < chars.len() && chars[k].is_whitespace() {
            k += 1;
        }
        match chars.get(k) {
            Some('(') => {
                // Free/associated call: first argument is the receiver.
                let close = match_paren(chars, k).unwrap_or(chars.len() - 1);
                let args_text: String = chars[k + 1..close].iter().collect();
                if last == "mul_unreduced_x3" {
                    return (self.apply_packed_x3(&args_text), close + 1);
                }
                let mut args: Vec<String> = split_top_level(&args_text)
                    .into_iter()
                    .map(|a| a.trim().to_owned())
                    .filter(|a| !a.is_empty())
                    .collect();
                let recv = if args.is_empty() {
                    Magnitude::Narrow(1)
                } else {
                    let first = args.remove(0);
                    self.eval(&first)
                };
                (self.apply(&last, recv, &args), close + 1)
            }
            Some('{') if is_type_name(&last) => {
                let close = match_brace(chars, k).unwrap_or(chars.len() - 1);
                let inner: String = chars[k + 1..close].iter().collect();
                let mut worst: Option<Magnitude> = None;
                for field in split_top_level(&inner) {
                    let value = match field.split_once(':') {
                        Some((_, v)) => v.to_owned(),
                        None => field,
                    };
                    if value.trim().is_empty() {
                        continue;
                    }
                    let c = self.eval(&value);
                    worst = Some(match worst {
                        None => c,
                        Some(w) => self.max_class(w, c),
                    });
                }
                (worst.unwrap_or(Magnitude::Narrow(1)), close + 1)
            }
            _ => (
                self.env.get(&last).copied().unwrap_or(Magnitude::Narrow(1)),
                i,
            ),
        }
    }

    /// Worst of two classes; mixing lattices in one struct literal is a
    /// finding (no shipped type holds narrow and wide halves).
    fn max_class(&mut self, a: Magnitude, b: Magnitude) -> Magnitude {
        match (a, b) {
            (Magnitude::Narrow(x), Magnitude::Narrow(y)) => Magnitude::Narrow(x.max(y)),
            (Magnitude::Wide(x), Magnitude::Wide(y)) => Magnitude::Wide(x.max(y)),
            _ => {
                self.report(format!(
                    "struct literal in `{}` mixes narrow and wide magnitude classes",
                    self.fn_name
                ));
                a
            }
        }
    }

    /// Narrow class of an operand, reporting a lattice mismatch.
    fn narrow_of(&mut self, m: Magnitude, call: &str) -> u64 {
        match m {
            Magnitude::Narrow(n) => n,
            Magnitude::Wide(_) => {
                self.report(format!(
                    "wide accumulator passed to single-width `{call}` in `{}`",
                    self.fn_name
                ));
                1
            }
        }
    }

    /// Wide class of an operand, reporting a lattice mismatch.
    fn wide_of(&mut self, m: Magnitude, call: &str) -> u64 {
        match m {
            Magnitude::Wide(n) => n,
            Magnitude::Narrow(_) => {
                self.report(format!(
                    "single-width value passed to wide `{call}` in `{}`",
                    self.fn_name
                ));
                1
            }
        }
    }

    /// Caps a freshly produced class against the field's headroom.
    fn check_cap(&mut self, m: Magnitude, call: &str) -> Magnitude {
        match m {
            Magnitude::Narrow(n) if n > self.caps.narrow => {
                self.report(format!(
                    "`{call}` in `{}` reaches class `{m}`, exceeding `{}`'s narrow cap \
                     of {}p (headroom overflow)",
                    self.fn_name, self.caps.name, self.caps.narrow
                ));
                Magnitude::Narrow(self.caps.narrow)
            }
            Magnitude::Wide(n) if n > self.caps.wide => {
                self.report(format!(
                    "`{call}` in `{}` reaches class `{m}`, exceeding `{}`'s wide cap \
                     of {}pp (headroom overflow)",
                    self.fn_name, self.caps.name, self.caps.wide
                ));
                Magnitude::Wide(self.caps.wide)
            }
            ok => ok,
        }
    }

    /// First non-literal argument, evaluated.
    fn operand(&mut self, args: &[String]) -> Magnitude {
        for a in args {
            if int_literal(a).is_none() {
                return self.eval(a);
            }
        }
        Magnitude::Narrow(1)
    }

    /// First integer-literal argument (the explicit `k·p²` offsets).
    fn offset(&mut self, args: &[String], call: &str) -> u64 {
        match args.iter().find_map(|a| int_literal(a)) {
            Some(k) => k,
            None => {
                self.report(format!(
                    "`{call}` in `{}` needs a literal `k` offset argument for the \
                     magnitude model",
                    self.fn_name
                ));
                0
            }
        }
    }

    /// Transfer function for the packed three-lane product. Both
    /// arguments must be literal `&[a, b, c]` arrays so every lane's
    /// operand class is visible; each lane is capped independently
    /// against the wide headroom, and the per-lane classes are parked
    /// in `self.lanes` for a destructuring `let [..]` to pick up.
    fn apply_packed_x3(&mut self, args_text: &str) -> Magnitude {
        let args = split_top_level(args_text);
        let (Some(lhs), Some(rhs)) = (
            args.first().and_then(|a| array_elems(a)),
            args.get(1).and_then(|a| array_elems(a)),
        ) else {
            self.report(format!(
                "`mul_unreduced_x3` in `{}` needs literal `&[a, b, c]` lane arrays so \
                 each lane's magnitude class is visible to the model",
                self.fn_name
            ));
            return Magnitude::Wide(1);
        };
        if lhs.len() != 3 || rhs.len() != 3 {
            self.report(format!(
                "`mul_unreduced_x3` in `{}` takes exactly three lanes per side, got \
                 {} and {}",
                self.fn_name,
                lhs.len(),
                rhs.len()
            ));
            return Magnitude::Wide(1);
        }
        let mut lanes = Vec::with_capacity(3);
        let mut worst = Magnitude::Wide(1);
        for (a, b) in lhs.iter().zip(&rhs) {
            let ma = self.eval(a);
            let na = self.narrow_of(ma, "mul_unreduced_x3");
            let mb = self.eval(b);
            let nb = self.narrow_of(mb, "mul_unreduced_x3");
            let lane = self.check_cap(Magnitude::Wide(na * nb), "mul_unreduced_x3");
            worst = self.max_class(worst, lane);
            lanes.push(lane);
        }
        self.lanes = Some(lanes);
        worst
    }

    /// Applies one call's transfer function.
    fn apply(&mut self, name: &str, recv: Magnitude, args: &[String]) -> Magnitude {
        // Any further transformation of a packed result collapses its
        // per-lane classes; only a direct destructuring keeps them.
        self.lanes = None;
        match name {
            "mul_unreduced_x3" => {
                self.report(format!(
                    "`mul_unreduced_x3` in `{}` must be called as an associated path \
                     (`Fp::mul_unreduced_x3(&[..], &[..])`) so the lint sees both lane \
                     arrays",
                    self.fn_name
                ));
                Magnitude::Wide(1)
            }
            "add_unreduced" | "add_unreduced2" => {
                let na = self.narrow_of(recv, name);
                let op = self.operand(args);
                let nb = self.narrow_of(op, name);
                self.check_cap(Magnitude::Narrow(na + nb), name)
            }
            "sub_unreduced" | "sub_unreduced2" => {
                let na = self.narrow_of(recv, name);
                let op = self.operand(args);
                let nb = self.narrow_of(op, name);
                if nb > 2 {
                    self.report(format!(
                        "`{name}` in `{}` subtracts a class `<{nb}p` value, but its fixed \
                         `+2p` offset only covers subtrahends below 2p",
                        self.fn_name
                    ));
                }
                self.check_cap(Magnitude::Narrow(na + 2), name)
            }
            "mul_unreduced" => {
                let na = self.narrow_of(recv, name);
                let op = self.operand(args);
                let nb = self.narrow_of(op, name);
                self.check_cap(Magnitude::Wide(na * nb), name)
            }
            "mul_unreduced2" => {
                let na = self.narrow_of(recv, name);
                let op = self.operand(args);
                let nb = self.narrow_of(op, name);
                if 2 * na > self.caps.narrow || 2 * nb > self.caps.narrow {
                    self.report(format!(
                        "`mul_unreduced2` in `{}` sums operand components to class \
                         `<{}p`, exceeding `{}`'s narrow cap of {}p",
                        self.fn_name,
                        (2 * na).max(2 * nb),
                        self.caps.name,
                        self.caps.narrow
                    ));
                }
                if na * nb > 4 {
                    self.report(format!(
                        "`mul_unreduced2` in `{}` forms a class `<{}pp` cross product, \
                         but its internal `4p²` offset only covers products below 4p²",
                        self.fn_name,
                        na * nb
                    ));
                }
                self.check_cap(Magnitude::Wide((na * nb + 4).max(4 * na * nb)), name)
            }
            "reduce" => {
                self.narrow_of(recv, name);
                Magnitude::Narrow(1)
            }
            "wide_add" | "wide_add2" => {
                let wa = self.wide_of(recv, name);
                let op = self.operand(args);
                let wb = self.wide_of(op, name);
                self.check_cap(Magnitude::Wide(wa + wb), name)
            }
            "wide_sub" => {
                let wa = self.wide_of(recv, name);
                let op = self.operand(args);
                let wb = self.wide_of(op, name);
                if wb > wa {
                    self.report(format!(
                        "offset-free `wide_sub` in `{}` subtracts class `<{wb}pp` from \
                         `<{wa}pp`; the class condition requires subtrahend <= minuend",
                        self.fn_name
                    ));
                }
                Magnitude::Wide(wa)
            }
            "wide_sub_offset" | "wide_sub2" => {
                let wa = self.wide_of(recv, name);
                let op = self.operand(args);
                let wb = self.wide_of(op, name);
                let k = self.offset(args, name);
                if k < wb {
                    self.report(format!(
                        "`{name}` in `{}` subtracts a class `<{wb}pp` value under a \
                         `{k}p²` offset; the offset must cover the subtrahend's class",
                        self.fn_name
                    ));
                }
                self.check_cap(Magnitude::Wide(wa + k), name)
            }
            "wide_nonresidue2" => {
                let wa = self.wide_of(recv, name);
                let k = self.offset(args, name);
                if k < wa {
                    self.report(format!(
                        "`wide_nonresidue2` in `{}` maps a class `<{wa}pp` value under a \
                         `{k}p²` offset; ξ's real part subtracts the full class, so the \
                         offset must cover it",
                        self.fn_name
                    ));
                }
                self.check_cap(Magnitude::Wide(wa + k), name)
            }
            "montgomery_reduce" | "montgomery_reduce2" => {
                self.wide_of(recv, name);
                Magnitude::Narrow(1)
            }
            _ => {
                if let Some(c) = self.contracts.get(name).copied() {
                    let limit = self.narrow_of(c.input, name);
                    let check = |s: &mut Self, m: Magnitude| {
                        let n = s.narrow_of(m, name);
                        if n > limit {
                            s.report(format!(
                                "class `<{n}p` operand exceeds `{name}`'s declared input \
                                 class `{}` in `{}`",
                                c.input, s.fn_name
                            ));
                        }
                    };
                    check(self, recv);
                    for a in args {
                        if int_literal(a).is_none() {
                            let m = self.eval(a);
                            check(self, m);
                        }
                    }
                    c.output
                } else {
                    // Eager or unknown: only canonical values may flow in.
                    let check = |s: &mut Self, m: Magnitude| {
                        if m != Magnitude::Narrow(1) {
                            s.report(format!(
                                "unreduced value (class `{m}`) escapes into eager or \
                                 unknown `{name}` in `{}`; reduce it first or declare a \
                                 contract for `{name}`",
                                s.fn_name
                            ));
                        }
                    };
                    check(self, recv);
                    for a in args {
                        if int_literal(a).is_none() {
                            let m = self.eval(a);
                            check(self, m);
                        }
                    }
                    Magnitude::Narrow(1)
                }
            }
        }
    }
}

/// Splits a (scrubbed, brace-stripped) body on top-level `;`, keeping
/// each statement's starting line offset within the body.
fn split_statements(body: &str) -> Vec<(usize, String)> {
    let chars: Vec<char> = body.chars().collect();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut line = 0usize;
    let mut stmt_line = 0usize;
    let mut seen_content = false;
    for (i, &c) in chars.iter().enumerate() {
        if c == '\n' {
            line += 1;
        }
        if !seen_content && !c.is_whitespace() {
            seen_content = true;
            stmt_line = line;
        }
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            ';' if depth == 0 => {
                out.push((stmt_line, chars[start..i].iter().collect()));
                start = i + 1;
                seen_content = false;
            }
            _ => {}
        }
    }
    if start < chars.len() {
        out.push((stmt_line, chars[start..].iter().collect()));
    }
    out
}

/// True for macro statements (`debug_assert!(..)`) — no field values
/// are produced, and their internals are not part of the value chain.
fn is_macro_stmt(t: &str) -> bool {
    let head: String = t.chars().take_while(|c| is_ident_char(*c)).collect();
    !head.is_empty() && t[head.len()..].trim_start().starts_with('!')
}

/// Position of the first top-level `=` that is an assignment (not part
/// of `==`, `<=`, `>=`, `=>`).
fn top_level_eq(text: &str) -> Option<usize> {
    let chars: Vec<char> = text.chars().collect();
    let mut depth = 0i32;
    for (i, &c) in chars.iter().enumerate() {
        match c {
            '(' | '[' | '{' | '<' => depth += 1,
            ')' | ']' | '}' | '>' => depth -= 1,
            '=' if depth == 0 => {
                let prev = i.checked_sub(1).map(|j| chars[j]);
                let next = chars.get(i + 1);
                if next != Some(&'=') && prev != Some('=') && prev != Some('<') && prev != Some('>')
                {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// True for type-literal heads (`Self`, `Fp2Wide { .. }`).
fn is_type_name(name: &str) -> bool {
    name == "Self" || name.chars().next().is_some_and(char::is_uppercase)
}

/// Elements of a literal `&[a, b, c]` array argument, or `None` if the
/// argument is not a (possibly referenced) array literal.
fn array_elems(arg: &str) -> Option<Vec<String>> {
    let t = arg.trim().trim_start_matches('&').trim_start();
    let inner = t.strip_prefix('[')?.strip_suffix(']')?;
    Some(
        split_top_level(inner)
            .into_iter()
            .map(|e| e.trim().to_owned())
            .filter(|e| !e.is_empty())
            .collect(),
    )
}

/// Parses a plain unsigned integer literal (with `_` separators).
fn int_literal(text: &str) -> Option<u64> {
    let t: String = text.trim().replace('_', "");
    if t.is_empty() || !t.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    t.parse().ok()
}

fn match_paren(chars: &[char], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, &c) in chars.iter().enumerate().skip(open) {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

fn match_brace(chars: &[char], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, &c) in chars.iter().enumerate().skip(open) {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use crate::parser;

    /// The BLS12-381 base field invocation: 381 bits over 6 limbs,
    /// three headroom bits → caps 8 / 64.
    const FX_FP: &str = "montgomery_field!(Tf, 6, [0xb9fe_ffff_ffff_aaab, \
                         0x1eab_fffe_b153_ffff, 0x6730_d2a0_f6b0_f624, 0x6477_4b84_f385_12bf, \
                         0x4b1b_a7b6_434b_acd7, 0x1a01_11ea_397f_e69a]);\n";

    fn run(src: &str) -> Vec<Finding> {
        let full = format!("{FX_FP}{src}");
        let files = parser::parse_files(&[("range_t.rs".to_owned(), full)]);
        analyze(&files)
    }

    #[test]
    fn caps_derive_from_the_invocation() {
        let files = parser::parse_files(&[("caps.rs".to_owned(), FX_FP.to_owned())]);
        let scope: Vec<&ParsedFile> = files.iter().collect();
        let caps = scan_field_caps(&scope);
        assert_eq!(caps.len(), 1);
        assert_eq!(caps[0].name, "Tf");
        assert_eq!(caps[0].narrow, 8);
        assert_eq!(
            caps[0].wide, 64,
            "64·p² + p·2^384 < 2^768 holds for BLS12-381"
        );
    }

    #[test]
    fn thin_modulus_gets_thin_caps() {
        // BLS12-381's Fr: 255 bits over 4 limbs, one headroom bit.
        let src = "montgomery_field!(Tr, 4, [0xffff_ffff_0000_0001, 0x53bd_a402_fffe_5bfe, \
                   0x3339_d808_09a1_d805, 0x73ed_a753_299d_7d48]);\n";
        let files = parser::parse_files(&[("caps.rs".to_owned(), src.to_owned())]);
        let scope: Vec<&ParsedFile> = files.iter().collect();
        let caps = scan_field_caps(&scope);
        assert_eq!(caps[0].narrow, 2);
        assert_eq!(
            caps[0].wide, 2,
            "4·r² + r·2^256 overflows 512 bits, 2·r² fits"
        );
    }

    #[test]
    fn clean_annotated_chain_passes() {
        let src = "impl Tf {\n    // range: <p\n    pub fn lazy_mul(&self, other: &Self) -> Self {\n        \
                   let w = self.mul_unreduced(other);\n        w.montgomery_reduce()\n    }\n}\n";
        let findings = run(src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn overflowing_chain_fires() {
        let src = "impl Tf {\n    // range: <p\n    pub fn hot(&self, other: &Self) -> Self {\n        \
                   let a = self.add_unreduced(other);\n        let b = a.add_unreduced(&a);\n        \
                   let c = b.add_unreduced(&b);\n        let d = c.add_unreduced(&c);\n        \
                   d.reduce()\n    }\n}\n";
        let findings = run(src);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("exceeding `Tf`'s narrow cap of 8p")),
            "{findings:?}"
        );
    }

    #[test]
    fn missing_annotation_fires() {
        let src = "impl Tf {\n    pub fn sneaky(&self, other: &Self) -> Self {\n        \
                   self.add_unreduced(other).reduce()\n    }\n}\n";
        let findings = run(src);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("declares no `// range:` contract")),
            "{findings:?}"
        );
    }

    #[test]
    fn stale_annotation_fires() {
        let src = "impl Tf {\n    // range: <p -> <3p\n    pub fn drifted(&self, other: &Self) -> Self {\n        \
                   self.add_unreduced(other)\n    }\n}\n";
        let findings = run(src);
        assert!(
            findings.iter().any(|f| f.message.contains(
                "stale contract on `drifted`: declared output `<3p` but the body computes `<2p`"
            )),
            "{findings:?}"
        );
    }

    #[test]
    fn offset_must_cover_the_subtrahend() {
        let src = "impl Tf {\n    // range: <2p -> <8pp\n    pub fn shaved(&self, other: &Self) -> TfWide {\n        \
                   let v = self.mul_unreduced(other);\n        let w = self.mul_unreduced(other);\n        \
                   v.wide_sub_offset(&w, 2)\n    }\n}\n";
        let findings = run(src);
        assert!(
            findings.iter().any(|f| f
                .message
                .contains("the offset must cover the subtrahend's class")),
            "{findings:?}"
        );
        // Classes still flow: v + k = 6, declared 8 → also stale.
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("stale contract")),
            "{findings:?}"
        );
    }

    #[test]
    fn unreduced_value_escaping_into_eager_ops_fires() {
        let src = "impl Tf {\n    // range: <p\n    pub fn leaky(&self, other: &Self) -> Self {\n        \
                   let a = self.add_unreduced(other);\n        a.mul(other)\n    }\n}\n";
        let findings = run(src);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("escapes into eager or unknown `mul`")),
            "{findings:?}"
        );
    }

    #[test]
    fn symbolic_transfer_tracks_the_internal_offset() {
        // mul_unreduced2 at canonical inputs: max(1·1 + 4, 4·1·1) = 5.
        let src = "impl Tf2 {\n    // range: <p -> <5pp\n    pub fn cross(&self, other: &Self) -> Tf2Wide {\n        \
                   self.mul_unreduced2(other)\n    }\n}\n";
        let findings = run(src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn control_flow_in_annotated_bodies_fires() {
        let src = "impl Tf {\n    // range: <p\n    pub fn forked(&self, other: &Self) -> Self {\n        \
                   let a = self.add_unreduced(other);\n        \
                   if a.is_zero() { return *self; }\n        a.reduce()\n    }\n}\n";
        let findings = run(src);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("outside the magnitude model")),
            "{findings:?}"
        );
    }

    #[test]
    fn conflicting_contracts_fire() {
        let src =
            "impl Tf {\n    // range: <p -> <2p\n    pub fn widen(&self, o: &Self) -> Self { \
                   self.add_unreduced(o) }\n}\nimpl TfB {\n    // range: <p -> <3p\n    \
                   pub fn widen(&self, o: &Self) -> Self { self.sub_unreduced(o) }\n}\n";
        let findings = run(src);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("call sites resolve contracts by name")),
            "{findings:?}"
        );
    }

    #[test]
    fn justified_suppression_silences_and_bare_does_not() {
        let ok = "impl Tf {\n    pub fn audited(&self, other: &Self) -> Self {\n        \
                  // range-ok: chain peaks at class 2, audited in review\n        \
                  self.add_unreduced(other).reduce()\n    }\n}\n";
        let findings = run(ok);
        assert!(findings.is_empty(), "{findings:?}");
        let bare = "impl Tf {\n    pub fn waved(&self, other: &Self) -> Self {\n        \
                    // range-ok:\n        self.add_unreduced(other).reduce()\n    }\n}\n";
        let findings = run(bare);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("gives no reason"));
    }

    #[test]
    fn test_functions_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn probe(a: &Tf, b: &Tf) -> Tf {\n        \
                   a.add_unreduced(b).reduce()\n    }\n}\n";
        let findings = run(src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn malformed_contract_is_reported() {
        let src = "impl Tf {\n    // range: <2q\n    pub fn typo(&self, o: &Self) -> Self { \
                   self.add_unreduced(o) }\n}\n";
        let findings = run(src);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("unparseable magnitude contract")),
            "{findings:?}"
        );
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        let src =
            "fn fold(v: &[u64]) -> u64 { v.iter().copied().reduce(|a, b| a | b).unwrap_or(0) }\n";
        let files = parser::parse_files(&[("crates/core/src/x.rs".to_owned(), src.to_owned())]);
        assert!(
            analyze(&files).is_empty(),
            "iterator reduce must not leak findings"
        );
    }

    #[test]
    fn simd_island_is_out_of_scope() {
        let src = "pub fn kernel(a: &Tf, b: &Tf) -> Tf {\n    a.add_unreduced(b).reduce()\n}\n";
        let files = parser::parse_files(&[(
            "crates/pairing/src/simd/avx2.rs".to_owned(),
            format!("{FX_FP}{src}"),
        )]);
        assert!(
            analyze(&files).is_empty(),
            "island kernels are certified by the backend lint, not here"
        );
    }

    #[test]
    fn packed_lanes_bind_per_lane() {
        // The mul_unreduced2 shape: lanes [<4pp, <4pp, <16pp]. The
        // `k = 4` offset on c0 is only sound because v0/v1 keep their
        // own <4pp class — a worst-lane smear (<16pp) would fire.
        let src = "impl Tf {\n    // range: <2p -> <16pp\n    pub fn karat(&self, other: &Self) -> TfWide {\n        \
                   let sa = self.add_unreduced(other);\n        \
                   let sb = other.add_unreduced(self);\n        \
                   let [v0, v1, s] = Tf::mul_unreduced_x3(&[*self, *other, sa], &[*other, *self, sb]);\n        \
                   let lo = v0.wide_sub_offset(&v1, 4);\n        \
                   s.wide_sub(&v0).wide_sub(&lo)\n    }\n}\n";
        let findings = run(src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn packed_call_needs_literal_lane_arrays() {
        let src = "impl Tf {\n    // range: <p -> <pp\n    pub fn opaque(&self, o: &Self) -> TfWide {\n        \
                   let lanes = [*self, *o, *self];\n        \
                   let [a, b, c] = Tf::mul_unreduced_x3(&lanes, &lanes);\n        \
                   a.wide_add(&b).wide_add(&c)\n    }\n}\n";
        let findings = run(src);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("needs literal `&[a, b, c]` lane arrays")),
            "{findings:?}"
        );
    }

    #[test]
    fn packed_pattern_must_bind_every_lane() {
        let src = "impl Tf {\n    // range: <p -> <pp\n    pub fn partial(&self, o: &Self) -> TfWide {\n        \
                   let [a, b] = Tf::mul_unreduced_x3(&[*self, *o, *self], &[*o, *self, *o]);\n        \
                   a.wide_add(&b)\n    }\n}\n";
        let findings = run(src);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("bind every lane")),
            "{findings:?}"
        );
    }

    #[test]
    fn packed_method_form_is_rejected() {
        let src = "impl Tf {\n    // range: <p -> <pp\n    pub fn dotted(&self, o: &Self) -> TfWide {\n        \
                   self.mul_unreduced_x3(o)\n    }\n}\n";
        let findings = run(src);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("must be called as an associated path")),
            "{findings:?}"
        );
    }

    #[test]
    fn packed_lane_rejects_wide_operands() {
        let src = "impl Tf {\n    // range: <p -> <pp\n    pub fn mixed(&self, o: &Self) -> TfWide {\n        \
                   let w = self.mul_unreduced(o);\n        \
                   let [a, b, c] = Tf::mul_unreduced_x3(&[*self, *o, w], &[*o, *self, *o]);\n        \
                   a.wide_add(&b).wide_add(&c)\n    }\n}\n";
        let findings = run(src);
        assert!(
            findings.iter().any(|f| f
                .message
                .contains("wide accumulator passed to single-width `mul_unreduced_x3`")),
            "{findings:?}"
        );
    }
}
