//! The concurrency-safety lint: lock discipline, certified from source.
//!
//! The sharded registry ([`mccls-core`]'s `ShardedVerifier`) is shared
//! mutable state on the verification hot path, and a cache that can
//! deadlock or serve a torn `e(Q_ID, P_pub)` entry under concurrency is
//! a verification-bypass bug, not just a performance bug. This pass
//! proves four properties over the scrubbed source and the workspace
//! call graph ([`crate::callgraph`]), the same way [`crate::opcount`]
//! proves the Table 1 operation budgets:
//!
//! 1. **Lock-order acyclicity** — every `Mutex`/`RwLock` guard creation
//!    site (`.lock()` / `.read()` / `.write()` with no arguments) is
//!    assigned a *lock class*: its receiver expression with `self.`
//!    stripped and index/call groups collapsed, so `self.shards[i]` and
//!    `self.shards[j]` share the class `shards[]`. Acquiring class `B`
//!    while a class-`A` guard is live — directly or through any chain
//!    of calls, via a per-function "acquires" fixpoint — adds the edge
//!    `A → B` to a global order graph. Any cycle is reported, including
//!    the self-edge `A → A`: two locks of one class (two shards of the
//!    same array) taken in opposite index orders by concurrent threads
//!    is the classic sharding deadlock.
//! 2. **No pairing work under a guard** — a call made while a guard is
//!    live whose statically certified cost ([`crate::opcount`]) includes
//!    a pairing, Miller loop, final exponentiation, or scalar
//!    multiplication is reported. Guards must bracket map access only;
//!    the expensive group arithmetic runs before the lock is taken or
//!    after it drops.
//! 3. **Send/Sync boundary audit** — hand-written `unsafe impl Send`/
//!    `unsafe impl Sync`, `static mut` items, and interior-mutability
//!    cells (`Cell`/`RefCell`/`UnsafeCell`) in any struct reachable
//!    from the registry's state (root structs are those defined in a
//!    `registry.rs` file, transitively closed over field type
//!    mentions) are reported. Atomics and `OnceLock` pass: they
//!    synchronize; cells do not.
//! 4. **Guard-extension hazards** — a guard bound to `_` drops on the
//!    same statement, silently unguarding its critical section; a guard
//!    in a function return type or stored in a struct field extends a
//!    critical section beyond any lexical scope this analysis (or a
//!    reviewer) can bound. All three shapes are reported.
//!
//! Guard liveness is lexical and deliberately over-approximate: a
//! `let`-bound guard is live from its binding to the end of the
//! enclosing block (or an explicit `drop(guard)`), and a temporary
//! guard (`m.lock().len()`) is live on its own line. Calls textually
//! before the acquisition on the binding line are excluded — they run
//! before the lock is taken.
//!
//! Suppress a reviewed site with `// lock-ok: <reason>`; a bare marker
//! with no written reason is itself a finding, like every other
//! suppression in this gate.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::lexer::{self, contains_word, is_ident_char};
use crate::opcount::{self, Cost};
use crate::parser::{FnItem, ParsedFile};
use crate::{suppression_near, Finding, Suppression};

/// The suppression marker, written as `// lock-ok: <reason>`.
pub const LOCK_OK_MARKER: &str = "lock-ok:";

/// Zero-argument methods that mint a lock guard.
const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

/// Guard type names that must not appear in return types or struct
/// fields.
const GUARD_TYPES: &[&str] = &["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

/// Interior-mutability cells that are data races when reachable from
/// `Sync` shared state. Atomics and `OnceLock` are deliberately absent.
const INTERIOR_MUTABILITY: &[&str] = &["Cell", "RefCell", "UnsafeCell"];

/// Counter slots (see [`opcount::COUNTERS`]) that make a call too
/// expensive to run under a lock: pairings, Miller loops, final
/// exponentiations, and G1/G2 scalar multiplications.
const EXPENSIVE_COUNTERS: usize = 5;

/// Runs the full concurrency pass. Send/Sync reachability roots are
/// the structs defined in `registry.rs` files.
pub fn analyze(files: &[ParsedFile]) -> Vec<Finding> {
    analyze_with_roots(files, &[])
}

/// Like [`analyze`], with extra named Send/Sync reachability roots —
/// the fixture entry point, where the dirty structs do not live in a
/// file named `registry.rs`.
pub fn analyze_with_roots(files: &[ParsedFile], extra_roots: &[&str]) -> Vec<Finding> {
    let graph = CallGraph::build(files);
    let costs = opcount::compute_costs(files, &graph);
    let guards: Vec<Vec<GuardSite>> = (0..graph.nodes.len())
        .map(|ni| guard_sites(graph.item(files, ni)))
        .collect();

    let mut findings = Vec::new();
    lock_order(files, &graph, &guards, &mut findings);
    hold_across(files, &graph, &costs, &guards, &mut findings);
    send_sync_audit(files, extra_roots, &mut findings);
    guard_extension(files, &graph, &guards, &mut findings);

    findings.sort();
    findings.dedup();
    findings
}

fn finding(file: &str, line: usize, message: String) -> Finding {
    Finding {
        file: file.to_owned(),
        line,
        lint: "concurrency",
        message,
    }
}

/// Checks the `lock-ok:` marker at `line`. Returns `true` when the
/// finding is suppressed with a written reason; a bare marker is
/// reported and does not suppress.
fn lock_ok(file: &ParsedFile, line: usize, findings: &mut Vec<Finding>) -> bool {
    let lines: Vec<&str> = file.raw_lines.iter().map(String::as_str).collect();
    match suppression_near(&lines, line, LOCK_OK_MARKER) {
        Suppression::Justified => true,
        Suppression::MissingReason => {
            findings.push(finding(
                &file.path,
                line,
                "`// lock-ok:` gives no reason — an unexplained lock-discipline waiver is \
                 itself a violation"
                    .to_owned(),
            ));
            false
        }
        Suppression::None => false,
    }
}

// ---------------------------------------------------------------------
// Guard model: where guards are created and how long they live.
// ---------------------------------------------------------------------

/// One guard creation site and its lexical liveness window.
#[derive(Debug)]
struct GuardSite {
    /// Normalized lock class of the receiver (`shards[]`, `journal`).
    class: String,
    /// Index of the acquiring call in the function's `calls` vector.
    call: usize,
    /// 1-based line of the acquisition.
    line: usize,
    /// Last line (inclusive) the guard is considered live.
    end: usize,
    /// Binding name for `let`-bound guards (`_` included), `None` for
    /// temporaries.
    binding: Option<String>,
}

impl GuardSite {
    /// Whether the call at `(ci, line)` executes while this guard is
    /// live. Calls textually before the acquisition on its own line ran
    /// before the lock was taken.
    fn covers(&self, ci: usize, line: usize) -> bool {
        ci != self.call
            && line >= self.line
            && line <= self.end
            && !(line == self.line && ci < self.call)
    }
}

/// Normalizes a receiver expression into a lock class: strips `&`/`*`
/// and whitespace, collapses `[...]`/`(...)` groups so all elements of
/// one lock array (or all returns of one accessor) share a class, and
/// drops a leading `self.`.
fn lock_class(receiver: &str) -> String {
    let chars: Vec<char> = receiver.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '[' => {
                out.push_str("[]");
                i = skip_group(&chars, i, '[', ']');
            }
            '(' => {
                out.push_str("()");
                i = skip_group(&chars, i, '(', ')');
            }
            c if c.is_whitespace() || c == '&' || c == '*' => i += 1,
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out.strip_prefix("self.").unwrap_or(&out).to_owned()
}

/// Index just past the group opened at `open`.
fn skip_group(chars: &[char], open: usize, oc: char, cc: char) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < chars.len() {
        if chars[i] == oc {
            depth += 1;
        } else if chars[i] == cc {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    chars.len()
}

/// A `let` statement in a body: the binding name, the lines its
/// right-hand side spans, and the line its enclosing block closes on.
#[derive(Debug)]
struct LetScope {
    name: String,
    start_line: usize,
    rhs_end_line: usize,
    scope_end_line: usize,
}

/// Scans a scrubbed body for `let` statements. `if let`/`while let`
/// heads are skipped: their "right-hand side" has no terminating `;`
/// and their scrutinees never bind guards in this codebase.
fn let_scopes(body: &str, body_line: usize) -> Vec<LetScope> {
    let chars: Vec<char> = body.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if !starts_word_at(&chars, i, "let")
            || preceded_by(&chars, i, "if")
            || preceded_by(&chars, i, "while")
        {
            i += 1;
            continue;
        }
        let start_line = body_line + newlines(&chars[..i]);
        let mut j = skip_ws(&chars, i + 3);
        if starts_word_at(&chars, j, "mut") {
            j = skip_ws(&chars, j + 3);
        }
        let name_start = j;
        while j < chars.len() && is_ident_char(chars[j]) {
            j += 1;
        }
        let name: String = chars[name_start..j].iter().collect();
        if name.is_empty() {
            i += 3;
            continue;
        }
        // `=` at depth 0 (skipping a type annotation's generics and
        // `==`/`=>`/compound-assignment shapes).
        let mut depth = 0i32;
        let mut eq = None;
        let mut k = j;
        while k < chars.len() {
            match chars[k] {
                '(' | '[' | '{' | '<' => depth += 1,
                ')' | ']' | '}' => depth -= 1,
                '>' if k > 0 && chars[k - 1] != '-' && chars[k - 1] != '=' => depth -= 1,
                ';' if depth <= 0 => break,
                '=' if depth == 0
                    && chars.get(k + 1) != Some(&'=')
                    && chars.get(k + 1) != Some(&'>')
                    && k > 0
                    && !matches!(chars[k - 1], '=' | '!' | '<' | '>') =>
                {
                    eq = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(eq) = eq else {
            i = k.max(i + 3);
            continue;
        };
        // Right-hand side runs to the `;` at depth 0.
        let mut depth = 0i32;
        let mut m = eq + 1;
        let mut semi = None;
        while m < chars.len() {
            match chars[m] {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                ';' if depth == 0 => {
                    semi = Some(m);
                    break;
                }
                _ => {}
            }
            m += 1;
        }
        let Some(semi) = semi else {
            i = eq + 1;
            continue;
        };
        // The binding's scope closes at the first unmatched `}` after
        // the statement.
        let mut depth = 0i32;
        let mut e = semi + 1;
        let mut scope_end = chars.len().saturating_sub(1);
        while e < chars.len() {
            match chars[e] {
                '{' => depth += 1,
                '}' => {
                    if depth == 0 {
                        scope_end = e;
                        break;
                    }
                    depth -= 1;
                }
                _ => {}
            }
            e += 1;
        }
        out.push(LetScope {
            name,
            start_line,
            rhs_end_line: body_line + newlines(&chars[..semi]),
            scope_end_line: body_line + newlines(&chars[..scope_end]),
        });
        // Continue just past `=` so `let`s nested in the right-hand
        // side (block expressions) are still scanned.
        i = eq + 1;
    }
    out
}

/// Extracts every guard creation site of a function with its liveness
/// window.
fn guard_sites(f: &FnItem) -> Vec<GuardSite> {
    let scopes = let_scopes(&f.body, f.body_line);
    let mut out = Vec::new();
    for (ci, call) in f.calls.iter().enumerate() {
        if !call.is_method
            || !call.args.is_empty()
            || !GUARD_METHODS.contains(&call.callee.as_str())
        {
            continue;
        }
        let Some(receiver) = &call.receiver else {
            continue;
        };
        let class = lock_class(receiver);
        // The innermost `let` whose right-hand side spans the call.
        let binding = scopes
            .iter()
            .rfind(|s| s.start_line <= call.line && call.line <= s.rhs_end_line);
        let (end, name) = match binding {
            // A `_` binding drops the guard on the spot (reported
            // separately as a guard-extension hazard).
            Some(s) if s.name == "_" => (call.line, Some(s.name.clone())),
            Some(s) => {
                // An explicit `drop(name)` releases early.
                let dropped = f
                    .calls
                    .iter()
                    .filter(|c| {
                        c.callee == "drop"
                            && !c.is_method
                            && c.args.len() == 1
                            && c.args[0] == s.name
                            && c.line >= call.line
                            && c.line <= s.scope_end_line
                    })
                    .map(|c| c.line)
                    .min();
                (dropped.unwrap_or(s.scope_end_line), Some(s.name.clone()))
            }
            None => (call.line, None),
        };
        out.push(GuardSite {
            class,
            call: ci,
            line: call.line,
            end,
            binding: name,
        });
    }
    out
}

// ---------------------------------------------------------------------
// (1) Lock-order acyclicity.
// ---------------------------------------------------------------------

fn lock_order(
    files: &[ParsedFile],
    graph: &CallGraph,
    guards: &[Vec<GuardSite>],
    findings: &mut Vec<Finding>,
) {
    // Per-function transitive "acquires" sets.
    let mut acquires: Vec<BTreeSet<String>> = guards
        .iter()
        .map(|gs| gs.iter().map(|g| g.class.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for ni in 0..graph.nodes.len() {
            for e in &graph.edges[ni] {
                let extra: Vec<String> = acquires[e.callee]
                    .iter()
                    .filter(|c| !acquires[ni].contains(*c))
                    .cloned()
                    .collect();
                if !extra.is_empty() {
                    acquires[ni].extend(extra);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Order edges `held → acquired`, each with its first provenance.
    let mut edges: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    for (ni, sites) in guards.iter().enumerate() {
        let f = graph.item(files, ni);
        let fi = graph.nodes[ni].0;
        for g in sites {
            for h in sites {
                if g.covers(h.call, h.line) {
                    edges
                        .entry((g.class.clone(), h.class.clone()))
                        .or_insert((fi, h.line));
                }
            }
            for e in &graph.edges[ni] {
                let call = &f.calls[e.call];
                if !g.covers(e.call, call.line) {
                    continue;
                }
                for acquired in &acquires[e.callee] {
                    edges
                        .entry((g.class.clone(), acquired.clone()))
                        .or_insert((fi, call.line));
                }
            }
        }
    }

    // Suppression filter at each edge's provenance line.
    let kept: Vec<((String, String), (usize, usize))> = edges
        .into_iter()
        .filter(|(_, (fi, line))| !lock_ok(&files[*fi], *line, findings))
        .collect();

    // Transitive closure over lock classes; `reach[i][i]` marks a cycle.
    let mut classes: Vec<&String> = kept
        .iter()
        .flat_map(|((a, b), _)| [a, b])
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    classes.sort();
    let idx: BTreeMap<&String, usize> = classes.iter().enumerate().map(|(i, c)| (*c, i)).collect();
    let n = classes.len();
    let mut reach = vec![vec![false; n]; n];
    for ((a, b), _) in &kept {
        reach[idx[a]][idx[b]] = true;
    }
    for k in 0..n {
        // Row `k` is stable within iteration `k` (or-ing it into itself
        // is a no-op), so a snapshot keeps Floyd–Warshall exact.
        let row_k = reach[k].clone();
        for row in &mut reach {
            if !row[k] {
                continue;
            }
            for (rij, &rkj) in row.iter_mut().zip(&row_k) {
                *rij = *rij || rkj;
            }
        }
    }

    let mut reported: BTreeSet<Vec<usize>> = BTreeSet::new();
    for i in 0..n {
        if !reach[i][i] {
            continue;
        }
        let scc: Vec<usize> = (0..n)
            .filter(|&j| reach[j][j] && reach[i][j] && reach[j][i])
            .collect();
        if !reported.insert(scc.clone()) {
            continue;
        }
        // Point the report at the earliest intra-cycle edge.
        let (fi, line) = kept
            .iter()
            .filter(|((a, b), _)| scc.contains(&idx[a]) && scc.contains(&idx[b]))
            .map(|(_, prov)| *prov)
            .min()
            .unwrap_or((0, 0));
        let message = if scc.len() == 1 {
            let class = classes[scc[0]];
            format!(
                "lock-order cycle: a `{class}` lock is acquired while another `{class}` guard \
                 is still held; two threads taking different instances (e.g. two shards of one \
                 lock array) in opposite orders deadlock"
            )
        } else {
            let list = scc
                .iter()
                .map(|&j| format!("`{}`", classes[j]))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "lock-order cycle among lock classes {list}: different call paths acquire them \
                 in conflicting orders, so concurrent callers can deadlock"
            )
        };
        findings.push(finding(&files[fi].path, line, message));
    }
}

// ---------------------------------------------------------------------
// (2) No pairing-grade work under a guard.
// ---------------------------------------------------------------------

fn hold_across(
    files: &[ParsedFile],
    graph: &CallGraph,
    costs: &[Cost],
    guards: &[Vec<GuardSite>],
    findings: &mut Vec<Finding>,
) {
    let no_lens = BTreeMap::new();
    for (ni, sites) in guards.iter().enumerate() {
        let f = graph.item(files, ni);
        let fi = graph.nodes[ni].0;
        for g in sites {
            for (ci, call) in f.calls.iter().enumerate() {
                if !g.covers(ci, call.line) {
                    continue;
                }
                let cost = match opcount::atomic_cost(call, &no_lens) {
                    Some(c) => expensive(&c).then_some(c),
                    None => graph.edges[ni]
                        .iter()
                        .filter(|e| e.call == ci)
                        .map(|e| costs[e.callee])
                        .find(expensive),
                };
                let Some(cost) = cost else {
                    continue;
                };
                if lock_ok(&files[fi], call.line, findings) {
                    continue;
                }
                let held = match &g.binding {
                    Some(name) => format!("guard `{name}`"),
                    None => "temporary guard".to_owned(),
                };
                findings.push(finding(
                    &files[fi].path,
                    call.line,
                    format!(
                        "lock {held} on `{}` (taken on line {}) is held across `{}` ({cost}); \
                         guards must bracket map access only — run pairing-grade work before \
                         taking the lock or after dropping it, or justify with \
                         `// lock-ok: <reason>`",
                        g.class, g.line, call.callee
                    ),
                ));
            }
        }
    }
}

/// Whether a cost vector contains work too expensive for a critical
/// section: any pairing, Miller loop, final exponentiation, or scalar
/// multiplication.
fn expensive(c: &Cost) -> bool {
    c.0[..EXPENSIVE_COUNTERS].iter().any(|v| !v.is_zero())
}

// ---------------------------------------------------------------------
// (3) Send/Sync boundary audit.
// ---------------------------------------------------------------------

/// A struct definition with per-line field text, for reachability.
#[derive(Debug)]
struct StructDef {
    file: usize,
    name: String,
    field_lines: Vec<(usize, String)>,
}

fn send_sync_audit(files: &[ParsedFile], extra_roots: &[&str], findings: &mut Vec<Finding>) {
    let mut structs: Vec<StructDef> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        let scrubbed = lexer::scrub(&file.raw_lines.join("\n"));
        let spans = lexer::test_spans(&scrubbed);

        for (li, text) in scrubbed.lines().enumerate() {
            let lno = li + 1;
            if lexer::in_spans(lno, &spans) {
                continue;
            }
            if contains_word(text, "unsafe")
                && contains_word(text, "impl")
                && (contains_word(text, "Send") || contains_word(text, "Sync"))
                && !lock_ok(file, lno, findings)
            {
                let which = if contains_word(text, "Send") {
                    "Send"
                } else {
                    "Sync"
                };
                findings.push(finding(
                    &file.path,
                    lno,
                    format!(
                        "hand-written `unsafe impl {which}` asserts thread safety the compiler \
                         no longer checks; derive it structurally or justify with \
                         `// lock-ok: <reason>`"
                    ),
                ));
            }
            if has_word_pair(text, "static", "mut") && !lock_ok(file, lno, findings) {
                findings.push(finding(
                    &file.path,
                    lno,
                    "`static mut` is unsynchronized global state — every access is a potential \
                     data race; use an atomic, a lock, or `OnceLock`"
                        .to_owned(),
                ));
            }
        }

        structs.extend(collect_structs(fi, &scrubbed, &spans));
    }

    // Roots: structs defined in a `registry.rs` file, plus explicit
    // extras (the fixture path).
    let mut reachable: BTreeSet<String> = structs
        .iter()
        .filter(|s| files[s.file].path.ends_with("registry.rs"))
        .map(|s| s.name.clone())
        .collect();
    reachable.extend(extra_roots.iter().map(|r| (*r).to_owned()));

    // Transitive closure over field type mentions.
    loop {
        let mut grew = false;
        for s in &structs {
            if reachable.contains(&s.name) {
                continue;
            }
            let mentioned = structs
                .iter()
                .filter(|r| reachable.contains(&r.name))
                .any(|r| r.field_lines.iter().any(|(_, t)| contains_word(t, &s.name)));
            if mentioned {
                reachable.insert(s.name.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    for s in &structs {
        if !reachable.contains(&s.name) {
            continue;
        }
        for (lno, text) in &s.field_lines {
            for cell in INTERIOR_MUTABILITY {
                if contains_word(text, cell) && !lock_ok(&files[s.file], *lno, findings) {
                    findings.push(finding(
                        &files[s.file].path,
                        *lno,
                        format!(
                            "interior-mutability cell `{cell}` in `{}`, which is reachable from \
                             the shared registry state; a cell under `Sync` sharing is a data \
                             race — use an atomic or move the field behind the shard lock",
                            s.name
                        ),
                    ));
                }
            }
        }
    }
}

/// Collects struct definitions (outside test spans) with their field
/// lines from one scrubbed file.
fn collect_structs(fi: usize, scrubbed: &str, spans: &[(usize, usize)]) -> Vec<StructDef> {
    let chars: Vec<char> = scrubbed.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if !starts_word_at(&chars, i, "struct") {
            i += 1;
            continue;
        }
        let line = newlines(&chars[..i]) + 1;
        let mut j = skip_ws(&chars, i + 6);
        let name_start = j;
        while j < chars.len() && is_ident_char(chars[j]) {
            j += 1;
        }
        let name: String = chars[name_start..j].iter().collect();
        i = j;
        if name.is_empty() || lexer::in_spans(line, spans) {
            continue;
        }
        if chars.get(j) == Some(&'<') {
            j = skip_angles(&chars, j);
        }
        // Body: the first `{` (named fields) or `(` (tuple fields)
        // before a terminating `;` (unit struct).
        let mut field_lines = Vec::new();
        while j < chars.len() {
            match chars[j] {
                '{' | '(' => {
                    let (oc, cc) = if chars[j] == '{' {
                        ('{', '}')
                    } else {
                        ('(', ')')
                    };
                    let end = skip_group(&chars, j, oc, cc).saturating_sub(1);
                    let mut lno = newlines(&chars[..j]) + 1;
                    let mut text = String::new();
                    for &c in &chars[j + 1..end] {
                        if c == '\n' {
                            field_lines.push((lno, std::mem::take(&mut text)));
                            lno += 1;
                        } else {
                            text.push(c);
                        }
                    }
                    if !text.is_empty() {
                        field_lines.push((lno, text));
                    }
                    j = end;
                    break;
                }
                ';' => break,
                _ => j += 1,
            }
        }
        out.push(StructDef {
            file: fi,
            name,
            field_lines,
        });
        i = j.max(i) + 1;
    }
    out
}

// ---------------------------------------------------------------------
// (4) Guard-extension hazards.
// ---------------------------------------------------------------------

fn guard_extension(
    files: &[ParsedFile],
    graph: &CallGraph,
    guards: &[Vec<GuardSite>],
    findings: &mut Vec<Finding>,
) {
    for (ni, sites) in guards.iter().enumerate() {
        let f = graph.item(files, ni);
        let fi = graph.nodes[ni].0;
        for ty in GUARD_TYPES {
            if contains_word(&f.ret, ty) && !lock_ok(&files[fi], f.decl_line, findings) {
                findings.push(finding(
                    &files[fi].path,
                    f.decl_line,
                    format!(
                        "`{}` returns a `{ty}`: a guard that escapes its function extends the \
                         critical section beyond any scope this analysis can bound; lock and \
                         release inside one function",
                        f.name
                    ),
                ));
            }
        }
        for g in sites {
            if g.binding.as_deref() == Some("_") && !lock_ok(&files[fi], g.line, findings) {
                findings.push(finding(
                    &files[fi].path,
                    g.line,
                    format!(
                        "lock guard on `{}` is bound to `_` and drops immediately — the \
                         critical section it was meant to protect is unguarded; bind it to a \
                         named guard",
                        g.class
                    ),
                ));
            }
        }
    }

    // Guards stored in struct fields, anywhere in scope.
    for (fi, file) in files.iter().enumerate() {
        let scrubbed = lexer::scrub(&file.raw_lines.join("\n"));
        let spans = lexer::test_spans(&scrubbed);
        for s in collect_structs(fi, &scrubbed, &spans) {
            for (lno, text) in &s.field_lines {
                for ty in GUARD_TYPES {
                    if contains_word(text, ty) && !lock_ok(file, *lno, findings) {
                        findings.push(finding(
                            &file.path,
                            *lno,
                            format!(
                                "struct `{}` stores a `{ty}`: a guard living in a field pins \
                                 its lock open indefinitely and defeats any lexical lock-order \
                                 reasoning",
                                s.name
                            ),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Small text helpers (local copies of parser-private scanners).
// ---------------------------------------------------------------------

fn newlines(chars: &[char]) -> usize {
    chars.iter().filter(|&&c| c == '\n').count()
}

fn starts_word_at(chars: &[char], i: usize, word: &str) -> bool {
    let pat: Vec<char> = word.chars().collect();
    i + pat.len() <= chars.len()
        && chars[i..i + pat.len()] == pat[..]
        && (i == 0 || !is_ident_char(chars[i - 1]))
        && chars.get(i + pat.len()).is_none_or(|c| !is_ident_char(*c))
}

/// Whether the last word before index `i` (skipping whitespace) is
/// `word`.
fn preceded_by(chars: &[char], i: usize, word: &str) -> bool {
    let mut j = i;
    while j > 0 && chars[j - 1].is_whitespace() {
        j -= 1;
    }
    let pat: Vec<char> = word.chars().collect();
    j >= pat.len()
        && chars[j - pat.len()..j] == pat[..]
        && (j == pat.len() || !is_ident_char(chars[j - pat.len() - 1]))
}

fn skip_ws(chars: &[char], mut i: usize) -> usize {
    while i < chars.len() && chars[i].is_whitespace() {
        i += 1;
    }
    i
}

fn skip_angles(chars: &[char], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < chars.len() {
        match chars[i] {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    chars.len()
}

/// Whether `first` is directly followed (modulo whitespace) by
/// `second`, both on word boundaries — catches `static mut` without
/// tripping on `&'static mut` references (the `'` is checked).
fn has_word_pair(text: &str, first: &str, second: &str) -> bool {
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if starts_word_at(&chars, i, first) && chars.get(i.wrapping_sub(1)) != Some(&'\'') {
            let j = skip_ws(&chars, i + first.len());
            if starts_word_at(&chars, j, second) {
                return true;
            }
        }
        i += 1;
    }
    false
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use crate::parser::parse_files;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let files = parse_files(&[(path.to_owned(), src.to_owned())]);
        analyze(&files)
    }

    #[test]
    fn lock_class_normalizes_receivers() {
        assert_eq!(lock_class("self.shards[idx]"), "shards[]");
        assert_eq!(lock_class("self.shards[i + 1]"), "shards[]");
        assert_eq!(lock_class("self.shard(id)"), "shard()");
        assert_eq!(lock_class("&self.journal"), "journal");
        assert_eq!(lock_class("s"), "s");
    }

    #[test]
    fn same_class_nesting_is_a_lock_order_cycle() {
        let src = "impl R {\n\
                   pub fn migrate(&self, i: usize, j: usize) {\n\
                   let src = self.shards[i].write();\n\
                   let dst = self.shards[j].write();\n\
                   src.touch(dst);\n\
                   }\n}\n";
        let findings = run("x.rs", src);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("lock-order cycle") && f.message.contains("`shards[]`")),
            "expected the two-shard self-cycle, got: {findings:?}"
        );
    }

    #[test]
    fn cross_function_opposite_orders_cycle() {
        let src = "impl R {\n\
                   pub fn checkpoint(&self) {\n\
                   let log = self.journal.lock();\n\
                   let shard = self.shards[0].read();\n\
                   log.push(shard.len());\n\
                   }\n\
                   pub fn restore(&self) {\n\
                   let shard = self.shards[0].write();\n\
                   self.append_journal();\n\
                   shard.clear();\n\
                   }\n\
                   fn append_journal(&self) {\n\
                   let log = self.journal.lock();\n\
                   log.pop();\n\
                   }\n}\n";
        let findings = run("x.rs", src);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("lock-order cycle")
                    && f.message.contains("`journal`")
                    && f.message.contains("`shards[]`")),
            "expected the interprocedural journal/shards cycle, got: {findings:?}"
        );
    }

    #[test]
    fn block_scoped_guard_ends_before_next_acquisition() {
        let src = "impl R {\n\
                   pub fn rotate(&self) {\n\
                   let n = {\n\
                   let log = self.journal.lock();\n\
                   log.len()\n\
                   };\n\
                   let shard = self.shards[n].write();\n\
                   shard.clear();\n\
                   }\n\
                   pub fn restore(&self) {\n\
                   let shard = self.shards[0].write();\n\
                   self.append_journal();\n\
                   shard.clear();\n\
                   }\n\
                   fn append_journal(&self) {\n\
                   let log = self.journal.lock();\n\
                   log.pop();\n\
                   }\n}\n";
        // `rotate` would close the cycle only if the block-scoped
        // journal guard were (wrongly) considered live at the `write`.
        let findings = run("x.rs", src);
        assert!(
            findings
                .iter()
                .all(|f| !f.message.contains("lock-order cycle")),
            "block-scoped guard must not extend past its block: {findings:?}"
        );
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "impl R {\n\
                   pub fn swap(&self) {\n\
                   let a = self.journal.lock();\n\
                   a.push(1);\n\
                   drop(a);\n\
                   let b = self.shards[0].write();\n\
                   b.clear();\n\
                   }\n\
                   pub fn other(&self) {\n\
                   let b = self.shards[0].write();\n\
                   let a = self.journal.lock();\n\
                   a.push(b.len());\n\
                   }\n}\n";
        let findings = run("x.rs", src);
        assert!(
            findings
                .iter()
                .all(|f| !f.message.contains("lock-order cycle")),
            "drop(guard) must release before the next acquisition: {findings:?}"
        );
    }

    #[test]
    fn pairing_under_guard_is_reported_and_precompute_twin_is_clean() {
        let src = "impl R {\n\
                   pub fn register_locked(&self, q: &G1, p: &G2) {\n\
                   let mut shard = self.shards[0].write();\n\
                   let rhs = ops::pair(q, p);\n\
                   shard.insert(rhs);\n\
                   }\n\
                   pub fn register_unlocked(&self, q: &G1, p: &G2) {\n\
                   let rhs = ops::pair(q, p);\n\
                   let mut shard = self.shards[0].write();\n\
                   shard.insert(rhs);\n\
                   }\n}\n";
        let findings = run("x.rs", src);
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.message.contains("held across `pair`"))
                .count(),
            1,
            "exactly the locked variant must fire: {findings:?}"
        );
        assert!(
            findings.iter().all(|f| f.line != 8),
            "the precompute-first twin is clean: {findings:?}"
        );
    }

    #[test]
    fn hold_across_is_interprocedural() {
        let src = "impl R {\n\
                   pub fn refresh(&self, q: &G1, p: &G2) {\n\
                   let mut shard = self.shards[0].write();\n\
                   let c = derive_constant(q, p);\n\
                   shard.insert(c);\n\
                   }\n}\n\
                   fn derive_constant(q: &G1, p: &G2) -> Gt {\n\
                   ops::pair(q, p)\n\
                   }\n";
        let findings = run("x.rs", src);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("held across `derive_constant`")),
            "the pairing one call down must be charged to the guard: {findings:?}"
        );
    }

    #[test]
    fn justified_lock_ok_suppresses_and_bare_marker_reports() {
        let src = "impl R {\n\
                   pub fn a(&self, q: &G1, p: &G2) {\n\
                   let mut s = self.shards[0].write();\n\
                   // lock-ok: startup path, no concurrent readers exist yet\n\
                   let c = ops::pair(q, p);\n\
                   s.insert(c);\n\
                   }\n\
                   pub fn b(&self, q: &G1, p: &G2) {\n\
                   let mut s = self.shards[0].write();\n\
                   // lock-ok:\n\
                   let c = ops::pair(q, p);\n\
                   s.insert(c);\n\
                   }\n}\n";
        let findings = run("x.rs", src);
        assert!(
            findings.iter().all(|f| f.line != 5),
            "justified suppression must silence the site: {findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("gives no reason")),
            "bare marker must be reported: {findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.line == 11 && f.message.contains("held across")),
            "bare marker must not suppress: {findings:?}"
        );
    }

    #[test]
    fn underscore_guard_and_guard_escapes_are_reported() {
        let src = "pub struct Lease<'a> {\n\
                   pub guard: MutexGuard<'a, u64>,\n\
                   }\n\
                   impl R {\n\
                   pub fn bump(&self) {\n\
                   let _ = self.journal.lock();\n\
                   self.counter.tick();\n\
                   }\n\
                   pub fn lease(&self) -> MutexGuard<'_, u64> {\n\
                   self.journal.lock()\n\
                   }\n\
                   pub fn held(&self) {\n\
                   let _guard = self.journal.lock();\n\
                   self.counter.tick();\n\
                   }\n}\n";
        let findings = run("x.rs", src);
        assert!(
            findings
                .iter()
                .any(|f| f.line == 6 && f.message.contains("bound to `_`")),
            "instantly-dropped guard must fire: {findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("`lease` returns a `MutexGuard`")),
            "returned guard must fire: {findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("`Lease` stores a `MutexGuard`")),
            "struct-stored guard must fire: {findings:?}"
        );
        assert!(
            findings.iter().all(|f| f.line != 13),
            "a named, held guard is clean: {findings:?}"
        );
    }

    #[test]
    fn send_sync_audit_fires_on_registry_rooted_state() {
        let src = "pub struct Registry {\n\
                   stats: Stats,\n\
                   }\n\
                   unsafe impl Sync for Registry {}\n\
                   static mut EPOCH: u64 = 0;\n";
        // `Stats` is reachable through the registry's field; the
        // `Unrelated` cell in another file never is.
        let other = "pub struct Stats {\n\
                     hits: std::cell::Cell<u64>,\n\
                     }\n\
                     pub struct Unrelated {\n\
                     scratch: std::cell::RefCell<u64>,\n\
                     }\n";
        let files = parse_files(&[
            ("crates/core/src/registry.rs".to_owned(), src.to_owned()),
            ("crates/core/src/stats.rs".to_owned(), other.to_owned()),
        ]);
        let findings = analyze(&files);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("`Cell` in `Stats`")),
            "cell reachable from the registry must fire: {findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("unsafe impl Sync")),
            "unsafe impl Sync must fire: {findings:?}"
        );
        assert!(
            findings.iter().any(|f| f.message.contains("`static mut`")),
            "static mut must fire: {findings:?}"
        );
        assert!(
            findings.iter().all(|f| !f.message.contains("Unrelated")),
            "a cell not reachable from the registry is out of scope here: {findings:?}"
        );
    }

    #[test]
    fn atomics_and_oncelock_pass_the_cell_audit() {
        let src = "pub struct Registry {\n\
                   epoch: std::sync::atomic::AtomicU64,\n\
                   prepared: std::sync::OnceLock<u64>,\n\
                   }\n";
        let files = parse_files(&[("crates/core/src/registry.rs".to_owned(), src.to_owned())]);
        let findings = analyze(&files);
        assert!(findings.is_empty(), "atomics synchronize: {findings:?}");
    }

    #[test]
    fn extra_roots_widen_the_audit() {
        let src = "pub struct FixtureRegistry {\n\
                   hits: std::cell::Cell<u64>,\n\
                   }\n";
        let files = parse_files(&[("cases.rs".to_owned(), src.to_owned())]);
        assert!(analyze(&files).is_empty(), "not rooted by default");
        let findings = analyze_with_roots(&files, &["FixtureRegistry"]);
        assert!(
            findings.iter().any(|f| f.message.contains("`Cell`")),
            "explicit root must bring the struct into scope: {findings:?}"
        );
    }

    #[test]
    fn calls_before_the_acquisition_on_the_binding_line_are_free() {
        // The accessor argument — a pairing included — is evaluated
        // before `.write()` takes the lock; charging it to the guard
        // would demand a waiver on every shard accessor.
        let src = "impl R {\n\
                   pub fn store(&self, q: &G1, p: &G2) {\n\
                   let mut s = self.lookup(ops::pair(q, p)).write();\n\
                   s.put(q);\n\
                   }\n}\n";
        let findings = run("x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
