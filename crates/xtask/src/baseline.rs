//! Stable finding IDs and the committed-baseline diff.
//!
//! CI needs to fail on *new* findings without demanding that every
//! historical one be fixed in the same change, and it needs to notice
//! when a baselined finding disappears but the baseline still lists it
//! (a stale entry hides the next regression at that site). Both halves
//! hinge on finding identity that survives unrelated edits:
//!
//! * the **ID** hashes `(lint, file, message)` — never the line number.
//!   Messages carry function names, call chains, and sink names but no
//!   line numbers, so renumbering a file does not churn IDs, while
//!   moving a finding to a different function or sink does.
//! * the **baseline file** (`xtask-baseline.json` at the workspace
//!   root) stores the full finding alongside its ID so reviews can read
//!   it; only the IDs participate in the diff.
//!
//! The JSON reader is deliberately minimal (std-only, like the rest of
//! the gate): it extracts the `"id"` string values and ignores
//! everything else, so hand-edits that keep the IDs intact stay valid.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::Finding;

/// Stable identity of a finding: the lint name plus an FNV-1a hash of
/// `(lint, file, message)`. Line numbers are deliberately excluded.
pub fn stable_id(f: &Finding) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in [f.lint, "\u{0}", &f.file, "\u{0}", &f.message] {
        for b in part.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{}-{h:016x}", f.lint)
}

/// Outcome of diffing current findings against a baseline.
#[derive(Debug, Default)]
pub struct Diff {
    /// Findings whose ID is not in the baseline: these fail the gate.
    pub new: Vec<Finding>,
    /// Baseline IDs with no matching current finding: stale entries,
    /// which also fail the gate until the baseline is regenerated.
    pub stale: Vec<String>,
}

/// Splits `current` into new-vs-baselined and reports stale IDs.
pub fn diff(current: &[Finding], baseline_ids: &BTreeSet<String>) -> Diff {
    let current_ids: BTreeSet<String> = current.iter().map(stable_id).collect();
    Diff {
        new: current
            .iter()
            .filter(|f| !baseline_ids.contains(&stable_id(f)))
            .cloned()
            .collect(),
        stale: baseline_ids
            .iter()
            .filter(|id| !current_ids.contains(*id))
            .cloned()
            .collect(),
    }
}

/// Renders the baseline file for the given findings.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"id\": {}, \"lint\": {}, \"file\": {}, \"message\": {}}}",
            quote(&stable_id(f)),
            quote(f.lint),
            quote(&f.file),
            quote(&f.message)
        );
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Extracts the baseline IDs from a baseline document. Tolerant by
/// design: any `"id"` key with a string value counts, other content is
/// ignored, and a malformed document yields the IDs that do parse.
pub fn parse_ids(text: &str) -> BTreeSet<String> {
    let mut ids = BTreeSet::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"id\"") {
        rest = &rest[pos + 4..];
        let Some(colon) = rest.find(':') else { break };
        let after = rest[colon + 1..].trim_start();
        let Some(body) = after.strip_prefix('"') else {
            continue;
        };
        if let Some(id) = read_json_string(body) {
            ids.insert(id);
        }
    }
    ids
}

/// Reads a JSON string body (after the opening quote) up to its
/// unescaped closing quote, decoding the escapes [`quote`] emits.
fn read_json_string(body: &str) -> Option<String> {
    let mut out = String::new();
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let v = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(v)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// JSON string quoting (mirrors the reporter's escaper).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    fn finding(file: &str, line: usize, message: &str) -> Finding {
        Finding {
            file: file.to_owned(),
            line,
            lint: "validate",
            message: message.to_owned(),
        }
    }

    #[test]
    fn ids_ignore_line_numbers_but_not_content() {
        let a = finding(
            "a.rs",
            10,
            "unvalidated element reaches sink `pair` via verify",
        );
        let b = finding(
            "a.rs",
            99,
            "unvalidated element reaches sink `pair` via verify",
        );
        let c = finding(
            "a.rs",
            10,
            "unvalidated element reaches sink `mul_g2` via verify",
        );
        assert_eq!(stable_id(&a), stable_id(&b));
        assert_ne!(stable_id(&a), stable_id(&c));
        assert_ne!(stable_id(&a), stable_id(&finding("b.rs", 10, &a.message)));
        assert!(stable_id(&a).starts_with("validate-"));
    }

    #[test]
    fn render_parse_round_trip() {
        let findings = vec![
            finding("a.rs", 1, "first \"quoted\" message"),
            finding("b.rs", 2, "second\nmessage"),
        ];
        let text = render(&findings);
        let ids = parse_ids(&text);
        assert_eq!(ids.len(), 2);
        for f in &findings {
            assert!(ids.contains(&stable_id(f)), "{text}");
        }
    }

    #[test]
    fn empty_baseline_renders_and_parses() {
        let text = render(&[]);
        assert!(text.contains("\"findings\": []"));
        assert!(parse_ids(&text).is_empty());
    }

    #[test]
    fn diff_splits_new_baselined_and_stale() {
        let old = finding("a.rs", 5, "old finding");
        let new = finding("a.rs", 7, "new finding");
        let gone = finding("c.rs", 1, "fixed finding");
        let baseline: BTreeSet<String> = [stable_id(&old), stable_id(&gone)].into_iter().collect();
        let d = diff(&[old.clone(), new.clone()], &baseline);
        assert_eq!(d.new, vec![new]);
        assert_eq!(d.stale, vec![stable_id(&gone)]);
    }

    #[test]
    fn in_sync_baseline_diffs_clean() {
        let f = finding("a.rs", 5, "finding");
        let baseline: BTreeSet<String> = [stable_id(&f)].into_iter().collect();
        let d = diff(&[f], &baseline);
        assert!(d.new.is_empty() && d.stale.is_empty(), "{d:?}");
    }
}
