//! The `backend` lint — unsafe-island containment and backend-parity
//! certification for the packed Montgomery kernels.
//!
//! The pairing crate keeps exactly one module subtree where `unsafe` is
//! legal: `crates/pairing/src/simd/`, the arch-intrinsic island behind
//! the runtime-dispatched [`FieldBackend`] facade. This lint is what
//! makes that exception safe to live with. Four analyses run over the
//! parsed workspace (the same [`crate::parser`] files the call-graph
//! passes use):
//!
//! 1. **Unsafe containment.** The token `unsafe` outside the island is
//!    a finding, full stop — no suppression marker exists for it (the
//!    crate roots also `forbid`/`deny` it, so this is defense in
//!    depth against a stray `#[allow]`). Inside the island every
//!    `unsafe` occurrence must carry a `// unsafe-ok: <reason>` marker
//!    on the line or directly above; a bare marker with no reason is
//!    rejected. Every intrinsic the island imports or path-calls from
//!    `core::arch`/`std::arch` must appear on the committed per-arch
//!    whitelist (`simd-intrinsics.toml`). Raw-pointer arithmetic,
//!    `transmute`, and inline `asm!` are always findings, marker or
//!    not: the kernels are written value-only (`setr`/`extract`,
//!    `vcreate`/`vgetq_lane`) precisely so none of those are needed.
//!
//! 2. **Cfg-dispatch parity.** Every non-private `#[target_feature]`
//!    (or `#[cfg(target_feature = ...)]`) function in the island must
//!    have a scalar twin: a non-gated island function of the same name
//!    with an identical signature (the portable kernel the dispatch
//!    falls back to, and the reference `backend_equivalence.rs`
//!    compares against bit for bit). And no packed vector type
//!    (`__m256i`, `uint64x2_t`, ...) may appear in any non-private
//!    island signature or `pub use`: callers only ever see `u64` limbs
//!    through the `FieldBackend` trait, so the tower cannot grow an
//!    accidental compile-time dependency on one ISA.
//!
//! 3. **Lane constant-time.** The island is reachable from the field
//!    multiplications under `sign`/`verify` (PR 3's taint pass seeds
//!    those operands), so its inputs are secret-derived by assumption
//!    and the lane discipline is enforced unconditionally rather than
//!    per-call-site: `movemask`/`ptest`-style mask extraction is a
//!    finding (it collapses per-lane data into a branchable scalar),
//!    as is any `if`/`while`/`match` condition or early `return` built
//!    on a lane extraction. `debug_assert!` lines are exempt — the
//!    per-lane sanity checks compile out of release builds. Reviewed
//!    sites suppress with `// backend-ok: <reason>`.
//!
//! 4. **Packed magnitude contracts.** Island functions the rest of the
//!    crate calls (the dispatch entry points) must declare the same
//!    `// range:` contracts PR 8's lint enforces elsewhere, and every
//!    same-name kernel (scalar, AVX2, NEON, dispatch) must declare
//!    *identical* classes — the packed lanes obey the same `8p`/`64p²`
//!    headroom caps as the scalar path, per lane. The classes are
//!    checked against the caps derived from the `montgomery_field!`
//!    invocations in scope. (The island's loop-shaped bodies are
//!    excluded from the straight-line range evaluator itself; the
//!    declared classes are consumed at call sites via
//!    `Fp::mul_unreduced_x3`'s per-lane transfer function.)
//!
//! [`FieldBackend`]: ../../pairing/src/field.rs

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::lexer::{self, contains_word, is_ident_char};
use crate::parser::{FnItem, ParsedFile};
use crate::range::{self, Magnitude};
use crate::{suppression_near, Finding, Suppression};

/// The committed intrinsic whitelist, at the workspace root.
pub const WHITELIST_FILE: &str = "simd-intrinsics.toml";

/// The required marker on every `unsafe` occurrence in the island.
pub const UNSAFE_MARKER: &str = "unsafe-ok:";

/// The suppression marker for parity/lane-ct/contract findings.
pub const ALLOW_MARKER: &str = "backend-ok:";

/// The only path prefix where `unsafe` is legal.
pub const ISLAND: &str = "crates/pairing/src/simd/";

/// Intrinsic name fragments that collapse per-lane data into a scalar
/// mask — the `movemask` family. Producing one is already a finding:
/// the only plausible consumer is a lane-dependent branch.
const MASK_SINKS: &[&str] = &["movemask", "ptest", "testz", "testc", "testnzc"];

/// Intrinsic name fragments that read a single lane out of a vector.
/// Legal in straight-line result extraction; a finding inside a branch
/// condition or an early `return`.
const LANE_READS: &[&str] = &["extract", "vgetq_lane", "vget_lane"];

/// Tokens that are findings anywhere in the island, marker or not.
const ALWAYS_DENY: &[(&str, &str)] = &[
    (
        "transmute",
        "`transmute` (re-type limbs with safe codecs instead)",
    ),
    (
        "*const",
        "raw pointer type (the kernels are value-only by design)",
    ),
    (
        "*mut",
        "raw pointer type (the kernels are value-only by design)",
    ),
    (".offset(", "raw pointer arithmetic"),
    (".byte_offset(", "raw pointer arithmetic"),
    (".wrapping_offset(", "raw pointer arithmetic"),
];

/// The parsed `simd-intrinsics.toml`: per-arch allowed intrinsic names.
#[derive(Debug, Default)]
pub struct Whitelist {
    /// `x86_64`/`aarch64` → allowed intrinsic names.
    pub arch: BTreeMap<String, BTreeSet<String>>,
}

/// Parses the whitelist file: `[arch]` sections with one
/// `allowed = [ ... ]` string array each (possibly spanning lines).
pub fn parse_whitelist(text: &str) -> Result<Whitelist, String> {
    let mut wl = Whitelist::default();
    let mut current: Option<String> = None;
    let mut in_array = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            if in_array {
                return Err(format!("line {lineno}: unterminated `allowed` array"));
            }
            let Some(key) = rest.strip_suffix(']') else {
                return Err(format!("line {lineno}: malformed section header `{line}`"));
            };
            let key = key.trim().to_owned();
            if key.is_empty() {
                return Err(format!("line {lineno}: empty section name"));
            }
            wl.arch.entry(key.clone()).or_default();
            current = Some(key);
            continue;
        }
        let Some(arch) = current.clone() else {
            return Err(format!("line {lineno}: entry before any `[arch]` section"));
        };
        let mut body = line;
        if !in_array {
            let Some(rest) = line.strip_prefix("allowed").map(str::trim_start) else {
                return Err(format!("line {lineno}: expected `allowed = [...]`"));
            };
            let Some(rest) = rest.strip_prefix('=').map(str::trim_start) else {
                return Err(format!("line {lineno}: expected `=` after `allowed`"));
            };
            let Some(rest) = rest.strip_prefix('[') else {
                return Err(format!("line {lineno}: expected `[` to open the array"));
            };
            in_array = true;
            body = rest.trim();
        }
        let mut chunk = body;
        if let Some(stripped) = chunk.strip_suffix(']') {
            chunk = stripped;
            in_array = false;
        }
        for item in chunk.split(',') {
            let name = item.trim().trim_matches('"').trim();
            if !name.is_empty() {
                if let Some(set) = wl.arch.get_mut(&arch) {
                    set.insert(name.to_owned());
                }
            }
        }
    }
    if in_array {
        return Err("unterminated `allowed` array at end of file".to_owned());
    }
    if wl.arch.is_empty() {
        return Err("no `[arch]` sections found".to_owned());
    }
    Ok(wl)
}

/// Runs the four analyses over the parsed workspace.
pub fn analyze(files: &[ParsedFile], whitelist: &Whitelist) -> Vec<Finding> {
    let mut findings = Vec::new();
    containment(files, whitelist, &mut findings);

    // Findings from the remaining analyses accept `// backend-ok:`.
    let mut soft = Vec::new();
    parity(files, &mut soft);
    lane_ct(files, &mut soft);
    contracts(files, &mut soft);
    for (path, line, message) in soft {
        let raw: Vec<&str> = files
            .iter()
            .find(|f| f.path == path)
            .map(|f| f.raw_lines.iter().map(String::as_str).collect())
            .unwrap_or_default();
        match suppression_near(&raw, line, ALLOW_MARKER) {
            Suppression::Justified => {}
            Suppression::MissingReason => findings.push(Finding {
                file: path,
                line,
                lint: "backend",
                message: format!("{message} (backend-ok present but gives no reason)"),
            }),
            Suppression::None => findings.push(Finding {
                file: path,
                line,
                lint: "backend",
                message,
            }),
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

/// True for paths inside the unsafe island.
fn in_island(path: &str) -> bool {
    path.starts_with(ISLAND)
}

/// Analysis 1: unsafe containment, marker discipline, the intrinsic
/// whitelist, and the always-deny token classes. None of these accept
/// `// backend-ok:` — the fix is to move the code, write the reason,
/// or amend the committed whitelist.
fn containment(files: &[ParsedFile], whitelist: &Whitelist, findings: &mut Vec<Finding>) {
    for file in files {
        let scrubbed = lexer::scrub(&file.raw_lines.join("\n"));
        let raw: Vec<&str> = file.raw_lines.iter().map(String::as_str).collect();
        let island = in_island(&file.path);
        for (idx, line) in scrubbed.lines().enumerate() {
            let lineno = idx + 1;
            if contains_word(line, "unsafe") {
                if !island {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: lineno,
                        lint: "backend",
                        message: format!(
                            "`unsafe` outside the island (`{ISLAND}`); packed kernels and \
                             their intrinsics live there or nowhere"
                        ),
                    });
                } else {
                    match suppression_near(&raw, lineno, UNSAFE_MARKER) {
                        Suppression::Justified => {}
                        Suppression::MissingReason => findings.push(Finding {
                            file: file.path.clone(),
                            line: lineno,
                            lint: "backend",
                            message: "`// unsafe-ok:` marker gives no reason; bare markers \
                                      are rejected"
                                .to_owned(),
                        }),
                        Suppression::None => findings.push(Finding {
                            file: file.path.clone(),
                            line: lineno,
                            lint: "backend",
                            message: "`unsafe` without a `// unsafe-ok: <reason>` marker on \
                                      the line or directly above"
                                .to_owned(),
                        }),
                    }
                }
            }
            if !island {
                continue;
            }
            for (token, label) in ALWAYS_DENY {
                let hit = if token.chars().all(is_ident_char) {
                    contains_word(line, token)
                } else {
                    line.contains(token)
                };
                if hit {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: lineno,
                        lint: "backend",
                        message: format!("{label} is never allowed in the island"),
                    });
                }
            }
            if line.contains("asm!") || contains_word(line, "global_asm") {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: lineno,
                    lint: "backend",
                    message: "inline assembly is never allowed in the island".to_owned(),
                });
            }
            // Belt-and-braces over the import scan below: x86 intrinsic
            // names are unambiguous (`_mm`-prefixed), so vet every use
            // site too, not just the `use` lines.
            for word in line
                .split(|c: char| !is_ident_char(c))
                .filter(|w| w.starts_with("_mm"))
            {
                check_one_intrinsic(&file.path, lineno, word, "x86_64", whitelist, findings);
            }
        }
        if island {
            check_intrinsic_imports(&file.path, &scrubbed, whitelist, findings);
        }
    }
}

/// Flags intrinsics imported (possibly across multiple lines) or
/// path-called from `core::arch`/`std::arch` that are missing from the
/// per-arch whitelist. Runs over the whole scrubbed file so multi-line
/// `use core::arch::x86_64::{ ... };` groups are fully vetted.
fn check_intrinsic_imports(
    path: &str,
    scrubbed: &str,
    whitelist: &Whitelist,
    findings: &mut Vec<Finding>,
) {
    for arch in ["x86_64", "aarch64"] {
        let needle = format!("arch::{arch}::");
        let mut from = 0;
        while let Some(pos) = scrubbed[from..].find(&needle) {
            let start = from + pos + needle.len();
            from = start;
            let lineno = scrubbed[..start].matches('\n').count() + 1;
            let rest = &scrubbed[start..];
            if let Some(brace) = rest.strip_prefix('{') {
                // `use core::arch::x86_64::{a, b, c};`, any line span;
                // findings point at the line opening the group.
                let inner = brace.split('}').next().unwrap_or(brace);
                for name in inner.split(',') {
                    check_one_intrinsic(path, lineno, name.trim(), arch, whitelist, findings);
                }
            } else {
                let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
                check_one_intrinsic(path, lineno, &name, arch, whitelist, findings);
            }
        }
    }
}

/// Vector type names (`__m256i`, `uint64x2_t`) are escape-analysis
/// business, not intrinsics; everything else must be whitelisted.
fn is_vector_type(name: &str) -> bool {
    name.starts_with("__m") || (name.ends_with("_t") && name.contains('x'))
}

fn check_one_intrinsic(
    path: &str,
    lineno: usize,
    name: &str,
    arch: &str,
    whitelist: &Whitelist,
    findings: &mut Vec<Finding>,
) {
    if name.is_empty() || is_vector_type(name) || name == "self" {
        return;
    }
    let allowed = whitelist
        .arch
        .get(arch)
        .is_some_and(|set| set.contains(name));
    if !allowed {
        findings.push(Finding {
            file: path.to_owned(),
            line: lineno,
            lint: "backend",
            message: format!(
                "intrinsic `{name}` is not on the `[{arch}]` whitelist in `{WHITELIST_FILE}`; \
                 widening the island's instruction surface is a reviewed diff to that file"
            ),
        });
    }
}

/// Attribute lines directly above a declaration (walking through
/// comments), joined.
fn attrs_above(raw_lines: &[String], decl_line: usize) -> String {
    let mut out = String::new();
    let mut line = decl_line;
    while line > 1 {
        line -= 1;
        let Some(text) = raw_lines.get(line - 1) else {
            break;
        };
        let t = text.trim_start();
        if t.starts_with("#[") {
            out.push_str(t);
            out.push('\n');
        } else if !t.starts_with("//") {
            break;
        }
    }
    out
}

/// True when the declaration line carries any `pub` visibility.
fn is_public(raw_lines: &[String], decl_line: usize) -> bool {
    raw_lines
        .get(decl_line - 1)
        .is_some_and(|l| l.trim_start().starts_with("pub"))
}

/// Whitespace-insensitive signature key: parameter types and return.
fn signature_key(item: &FnItem) -> String {
    let mut key = String::new();
    for p in &item.params {
        key.push_str(&p.ty.split_whitespace().collect::<String>());
        key.push(',');
    }
    key.push_str("->");
    key.push_str(&item.ret.split_whitespace().collect::<String>());
    key
}

/// True for packed vector types appearing in a signature fragment.
fn mentions_packed_type(ty: &str) -> bool {
    ty.contains("__m")
        || ty
            .split(|c: char| !is_ident_char(c))
            .any(|w| !w.is_empty() && is_vector_type(w))
}

/// Analysis 2: arch-gated kernels need non-gated twins with identical
/// signatures, and no packed type may appear in a non-private island
/// signature or re-export.
fn parity(files: &[ParsedFile], soft: &mut Vec<(String, usize, String)>) {
    // Non-gated island functions by name: the twin candidates.
    let mut twins: HashMap<&str, Vec<String>> = HashMap::new();
    for file in files.iter().filter(|f| in_island(&f.path)) {
        for item in &file.fns {
            if item.is_test {
                continue;
            }
            if !attrs_above(&file.raw_lines, item.decl_line).contains("target_feature") {
                twins
                    .entry(item.name.as_str())
                    .or_default()
                    .push(signature_key(item));
            }
        }
    }
    for file in files.iter().filter(|f| in_island(&f.path)) {
        for item in &file.fns {
            if item.is_test {
                continue;
            }
            let gated = attrs_above(&file.raw_lines, item.decl_line).contains("target_feature");
            let public = is_public(&file.raw_lines, item.decl_line);
            if gated && public {
                match twins.get(item.name.as_str()) {
                    None => soft.push((
                        file.path.clone(),
                        item.decl_line,
                        format!(
                            "arch-gated `{}` has no scalar twin: a non-gated island \
                             function of the same name and signature must exist for \
                             dispatch to fall back to",
                            item.name
                        ),
                    )),
                    Some(sigs) if !sigs.contains(&signature_key(item)) => soft.push((
                        file.path.clone(),
                        item.decl_line,
                        format!(
                            "arch-gated `{}` and its scalar twin disagree on their \
                             signatures; the dispatch seam must be bit-for-bit \
                             interchangeable",
                            item.name
                        ),
                    )),
                    Some(_) => {}
                }
            }
            if public {
                for p in &item.params {
                    if mentions_packed_type(&p.ty) {
                        soft.push((
                            file.path.clone(),
                            item.decl_line,
                            format!(
                                "packed vector type in non-private signature of `{}` \
                                 (parameter `{}`): the island's surface is `u64` limbs only",
                                item.name, p.name
                            ),
                        ));
                    }
                }
                if mentions_packed_type(&item.ret) {
                    soft.push((
                        file.path.clone(),
                        item.decl_line,
                        format!(
                            "packed vector type in non-private return of `{}`: the \
                             island's surface is `u64` limbs only",
                            item.name
                        ),
                    ));
                }
            }
        }
        // `pub use` of arch modules would re-export vector types wholesale.
        let scrubbed = lexer::scrub(&file.raw_lines.join("\n"));
        for (idx, line) in scrubbed.lines().enumerate() {
            let t = line.trim_start();
            if t.starts_with("pub use") && t.contains("arch::") {
                soft.push((
                    file.path.clone(),
                    idx + 1,
                    "`pub use` of an arch module re-exports packed types past the island \
                     boundary"
                        .to_owned(),
                ));
            }
        }
    }
}

/// Analysis 3: lane-dependent control flow. The island's operands are
/// secret-derived by assumption (reachable from the field products
/// under `sign`/`verify`), so the discipline holds island-wide.
fn lane_ct(files: &[ParsedFile], soft: &mut Vec<(String, usize, String)>) {
    for file in files.iter().filter(|f| in_island(&f.path)) {
        let scrubbed = lexer::scrub(&file.raw_lines.join("\n"));
        for (idx, line) in scrubbed.lines().enumerate() {
            let lineno = idx + 1;
            let t = line.trim_start();
            if t.starts_with("debug_assert") {
                // Per-lane sanity checks compile out of release builds.
                continue;
            }
            for sink in MASK_SINKS {
                if t.contains(sink) {
                    soft.push((
                        file.path.clone(),
                        lineno,
                        format!(
                            "`{sink}`-style mask extraction collapses per-lane data into \
                             a branchable scalar; lane-ct discipline forbids it"
                        ),
                    ));
                }
            }
            let lane_read = LANE_READS.iter().any(|r| t.contains(r));
            if !lane_read {
                continue;
            }
            let branch_head = t.starts_with("if ")
                || t.starts_with("if(")
                || t.starts_with("while ")
                || t.starts_with("while(")
                || t.starts_with("match ");
            if branch_head {
                soft.push((
                    file.path.clone(),
                    lineno,
                    "branch condition reads a vector lane; secret-derived lanes must not \
                     steer control flow"
                        .to_owned(),
                ));
            }
            if t.contains("return ") {
                soft.push((
                    file.path.clone(),
                    lineno,
                    "early `return` keyed on a vector lane is a per-lane timing leak".to_owned(),
                ));
            }
        }
    }
}

/// Analysis 4: `// range:` contracts on the island's dispatch entry
/// points — present, parseable, within the field's headroom caps, and
/// identical across every same-name kernel.
fn contracts(files: &[ParsedFile], soft: &mut Vec<(String, usize, String)>) {
    let all: Vec<&ParsedFile> = files.iter().collect();
    let caps = range::scan_field_caps(&all);
    // The island kernels are written for the 6-limb base field; prefer
    // its caps by name, fall back to the loosest in scope.
    let caps = caps
        .iter()
        .find(|c| c.name == "Fp")
        .or_else(|| caps.iter().max_by_key(|c| c.narrow));

    // Entry points: island function names called from outside the island.
    let island_fn_names: BTreeSet<&str> = files
        .iter()
        .filter(|f| in_island(&f.path))
        .flat_map(|f| f.fns.iter())
        .filter(|i| !i.is_test)
        .map(|i| i.name.as_str())
        .collect();
    let mut entries: BTreeSet<&str> = BTreeSet::new();
    for file in files.iter().filter(|f| !in_island(&f.path)) {
        for item in &file.fns {
            for call in &item.calls {
                if let Some(name) = island_fn_names.get(call.callee.as_str()) {
                    entries.insert(name);
                }
            }
        }
    }

    // Collect each entry implementation's declared contract.
    let mut declared: HashMap<&str, Vec<(String, usize, Magnitude, Magnitude)>> = HashMap::new();
    for file in files.iter().filter(|f| in_island(&f.path)) {
        for item in &file.fns {
            if item.is_test || !entries.contains(item.name.as_str()) {
                continue;
            }
            match range::contract_for(&file.raw_lines, item.decl_line) {
                None => soft.push((
                    file.path.clone(),
                    item.decl_line,
                    format!(
                        "packed entry point `{}` declares no `// range:` contract; the \
                         per-lane magnitude classes must be committed like every other \
                         lazy primitive's",
                        item.name
                    ),
                )),
                Some(Err(err)) => soft.push((
                    file.path.clone(),
                    item.decl_line,
                    format!("unparseable magnitude contract on `{}`: {err}", item.name),
                )),
                Some(Ok(c)) => {
                    if let Some(caps) = caps {
                        let narrow_over = match c.input {
                            Magnitude::Narrow(n) => n > caps.narrow,
                            Magnitude::Wide(_) => true,
                        };
                        let out_over = match c.output {
                            Magnitude::Narrow(n) => n > caps.narrow,
                            Magnitude::Wide(w) => w > caps.wide,
                        };
                        if narrow_over || out_over {
                            soft.push((
                                file.path.clone(),
                                item.decl_line,
                                format!(
                                    "contract `{} -> {}` on `{}` exceeds `{}`'s headroom \
                                     caps ({}p narrow, {}pp wide); packed lanes obey the \
                                     same caps as the scalar path",
                                    c.input, c.output, item.name, caps.name, caps.narrow, caps.wide
                                ),
                            ));
                        }
                    }
                    declared.entry(item.name.as_str()).or_default().push((
                        file.path.clone(),
                        item.decl_line,
                        c.input,
                        c.output,
                    ));
                }
            }
        }
    }
    for (name, impls) in &declared {
        let Some((_, _, i0, o0)) = impls.first() else {
            continue;
        };
        for (path, line, i, o) in impls {
            if i != i0 || o != o0 {
                soft.push((
                    path.clone(),
                    *line,
                    format!(
                        "`{name}` declares `{i} -> {o}` here but `{i0} -> {o0}` elsewhere; \
                         every backend's kernel must commit to identical per-lane classes"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use crate::parser;

    const WL: &str = "[x86_64]\nallowed = [\"_mm256_add_epi64\", \"_mm256_extract_epi64\", \
                      \"_mm256_movemask_epi8\"]\n\
                      [aarch64]\nallowed = [\"vaddq_u64\"]\n";

    fn run(sources: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<(String, String)> = sources
            .iter()
            .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
            .collect();
        let files = parser::parse_files(&owned);
        analyze(&files, &parse_whitelist(WL).unwrap())
    }

    const ISLE: &str = "crates/pairing/src/simd/mod.rs";

    #[test]
    fn whitelist_parses_and_rejects_garbage() {
        let wl = parse_whitelist(WL).unwrap();
        assert!(wl.arch["x86_64"].contains("_mm256_add_epi64"));
        assert!(wl.arch["aarch64"].contains("vaddq_u64"));
        assert!(
            parse_whitelist("allowed = [\"x\"]\n").is_err(),
            "entry before section"
        );
        assert!(
            parse_whitelist("[x86_64]\nnames = [\"x\"]\n").is_err(),
            "wrong key"
        );
        assert!(parse_whitelist("").is_err(), "empty file");
        // Multi-line arrays parse.
        let ml = parse_whitelist("[x86_64]\nallowed = [\n  \"_mm256_add_epi64\",\n]\n").unwrap();
        assert!(ml.arch["x86_64"].contains("_mm256_add_epi64"));
    }

    #[test]
    fn unsafe_outside_the_island_fires_unconditionally() {
        let findings = run(&[(
            "crates/pairing/src/fp.rs",
            "fn sneak() {\n    // unsafe-ok: no marker helps out here\n    \
             unsafe { core::hint::unreachable_unchecked() }\n}\n",
        )]);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("outside the island")),
            "{findings:?}"
        );
    }

    #[test]
    fn island_unsafe_needs_a_reasoned_marker() {
        let missing = run(&[(ISLE, "fn go() {\n    unsafe { kernel() }\n}\n")]);
        assert!(
            missing
                .iter()
                .any(|f| f.message.contains("without a `// unsafe-ok:")),
            "{missing:?}"
        );
        let bare = run(&[(
            ISLE,
            "fn go() {\n    // unsafe-ok:\n    unsafe { kernel() }\n}\n",
        )]);
        assert!(
            bare.iter()
                .any(|f| f.message.contains("bare markers are rejected")),
            "{bare:?}"
        );
        let ok = run(&[(
            ISLE,
            "fn go() {\n    // unsafe-ok: feature detection precedes this call\n    \
             unsafe { kernel() }\n}\n",
        )]);
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn non_whitelisted_intrinsics_fire() {
        let findings = run(&[(
            ISLE,
            "use core::arch::x86_64::{_mm256_add_epi64, _mm256_shuffle_epi8};\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`_mm256_shuffle_epi8`"));
        assert!(findings[0].message.contains("[x86_64]"));
    }

    #[test]
    fn vector_type_imports_are_not_intrinsics() {
        let findings = run(&[(
            ISLE,
            "use core::arch::aarch64::{uint64x2_t, vaddq_u64};\nuse core::arch::x86_64::__m256i;\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn always_deny_tokens_fire_even_with_markers() {
        let findings = run(&[(
            ISLE,
            "fn evil(p: *const u64) -> u64 {\n    // unsafe-ok: reviewed\n    // backend-ok: reviewed\n    \
             unsafe { core::mem::transmute(p.offset(1)) }\n}\n",
        )]);
        assert!(
            findings.iter().any(|f| f.message.contains("`transmute`")),
            "{findings:?}"
        );
        assert!(
            findings.iter().any(|f| f.message.contains("raw pointer")),
            "{findings:?}"
        );
    }

    #[test]
    fn gated_kernel_without_twin_fires() {
        let findings = run(&[(
            "crates/pairing/src/simd/avx2.rs",
            "#[target_feature(enable = \"avx2\")]\n\
             pub(crate) fn orphan(a: &[u64; 6]) -> [u64; 6] {\n    *a\n}\n",
        )]);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("no scalar twin")),
            "{findings:?}"
        );
    }

    #[test]
    fn twin_with_matching_signature_is_silent() {
        let findings = run(&[
            (
                "crates/pairing/src/simd/avx2.rs",
                "#[target_feature(enable = \"avx2\")]\n\
                 pub(crate) fn mirrored(a: &[u64; 6]) -> [u64; 6] {\n    *a\n}\n",
            ),
            (
                "crates/pairing/src/simd/scalar.rs",
                "pub(crate) fn mirrored(a: &[u64; 6]) -> [u64; 6] {\n    *a\n}\n",
            ),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn twin_signature_drift_fires() {
        let findings = run(&[
            (
                "crates/pairing/src/simd/avx2.rs",
                "#[target_feature(enable = \"avx2\")]\n\
                 pub(crate) fn drifted(a: &[u64; 6]) -> [u64; 6] {\n    *a\n}\n",
            ),
            (
                "crates/pairing/src/simd/scalar.rs",
                "pub(crate) fn drifted(a: &[u64; 4]) -> [u64; 4] {\n    *a\n}\n",
            ),
        ]);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("disagree on their signatures")),
            "{findings:?}"
        );
    }

    #[test]
    fn packed_type_escaping_the_surface_fires() {
        let findings = run(&[(ISLE, "pub(crate) fn leak(v: __m256i) -> u64 {\n    0\n}\n")]);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("packed vector type")),
            "{findings:?}"
        );
    }

    #[test]
    fn movemask_and_lane_branches_fire_but_debug_asserts_do_not() {
        let findings = run(&[(
            ISLE,
            "fn leaky(v: __m256i) {\n    let m = _mm256_movemask_epi8(v);\n    \
             if _mm256_extract_epi64::<0>(v) == 0 { return; }\n    \
             debug_assert!(_mm256_extract_epi64::<3>(v) == 0);\n}\n",
        )]);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("mask extraction")),
            "{findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("branch condition reads a vector lane")),
            "{findings:?}"
        );
        assert_eq!(
            findings.iter().filter(|f| f.line == 4).count(),
            0,
            "debug_assert lines are exempt: {findings:?}"
        );
    }

    #[test]
    fn backend_ok_suppresses_lane_findings_with_reason() {
        let findings = run(&[(
            ISLE,
            "fn audited(v: __m256i) {\n    \
             // backend-ok: mask feeds a constant-time select, reviewed\n    \
             let m = _mm256_movemask_epi8(v);\n    let _ = m;\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    const FX_FP: &str = "montgomery_field!(Fp, 6, [0xb9fe_ffff_ffff_aaab, \
                         0x1eab_fffe_b153_ffff, 0x6730_d2a0_f6b0_f624, 0x6477_4b84_f385_12bf, \
                         0x4b1b_a7b6_434b_acd7, 0x1a01_11ea_397f_e69a]);\n";

    #[test]
    fn entry_point_without_contract_fires() {
        let caller = format!("{FX_FP}fn outside() {{\n    let _ = packed_entry(&[0u64; 6]);\n}}\n");
        let findings = run(&[
            ("crates/pairing/src/fp.rs", caller.as_str()),
            (
                ISLE,
                "pub(crate) fn packed_entry(a: &[u64; 6]) -> ([u64; 6], [u64; 6]) {\n    \
                 (*a, *a)\n}\n",
            ),
        ]);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("declares no `// range:` contract")),
            "{findings:?}"
        );
    }

    #[test]
    fn over_cap_contract_fires() {
        let caller = format!("{FX_FP}fn outside() {{\n    let _ = packed_entry(&[0u64; 6]);\n}}\n");
        let findings = run(&[
            ("crates/pairing/src/fp.rs", caller.as_str()),
            (
                ISLE,
                "// range: <16p -> <512pp\npub(crate) fn packed_entry(a: &[u64; 6]) -> \
                 ([u64; 6], [u64; 6]) {\n    (*a, *a)\n}\n",
            ),
        ]);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("exceeds `Fp`'s headroom caps")),
            "{findings:?}"
        );
    }

    #[test]
    fn contract_drift_between_backends_fires() {
        let caller = format!("{FX_FP}fn outside() {{\n    let _ = packed_entry(&[0u64; 6]);\n}}\n");
        let findings = run(&[
            ("crates/pairing/src/fp.rs", caller.as_str()),
            (
                "crates/pairing/src/simd/scalar.rs",
                "// range: <8p -> <64pp\npub(crate) fn packed_entry(a: &[u64; 6]) -> \
                 ([u64; 6], [u64; 6]) {\n    (*a, *a)\n}\n",
            ),
            (
                "crates/pairing/src/simd/avx2.rs",
                "// range: <4p -> <16pp\npub(crate) fn packed_entry(a: &[u64; 6]) -> \
                 ([u64; 6], [u64; 6]) {\n    (*a, *a)\n}\n",
            ),
        ]);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("identical per-lane classes")),
            "{findings:?}"
        );
    }

    #[test]
    fn matching_contracts_within_caps_are_silent() {
        let caller = format!("{FX_FP}fn outside() {{\n    let _ = packed_entry(&[0u64; 6]);\n}}\n");
        let findings = run(&[
            ("crates/pairing/src/fp.rs", caller.as_str()),
            (
                "crates/pairing/src/simd/scalar.rs",
                "// range: <8p -> <64pp\npub(crate) fn packed_entry(a: &[u64; 6]) -> \
                 ([u64; 6], [u64; 6]) {\n    (*a, *a)\n}\n",
            ),
            (
                "crates/pairing/src/simd/avx2.rs",
                "// range: <8p -> <64pp\npub(crate) fn packed_entry(a: &[u64; 6]) -> \
                 ([u64; 6], [u64; 6]) {\n    (*a, *a)\n}\n",
            ),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
