//! The constant-time discipline lint: intraprocedural backend.
//!
//! McCLS's selling point is a cheap signing path on exposed mobile
//! nodes, which makes timing leaks part of the threat model. This
//! module provides the per-function-body taint engine used two ways:
//!
//! * [`scan`] — the function-scoped lint from PR 1: each body is
//!   analysed in isolation, seeded only by taint *sources* born inside
//!   it (key-material field reads, RNG draws). Parameters carry no
//!   taint here.
//! * [`analyze_body`] — the reusable engine behind the interprocedural
//!   pass in [`crate::taint`], which additionally seeds declared-secret
//!   parameters and calls known to return secrets, and reports whether
//!   the body's return value is secret-carrying.
//!
//! The engine's rules:
//!
//! 1. **Seed**: an initializer that touches key material or an RNG draw
//!    ([`TAINT_SOURCES`]) marks its binding as secret-carrying, as does
//!    any name in the caller-provided seed set.
//! 2. **Propagate**: `let` bindings *and* plain/compound assignments
//!    whose right-hand side mentions a tainted name (or calls a
//!    secret-returning function) become tainted, to a fixed point.
//!    Tuple/struct patterns are skipped — a deliberate
//!    under-approximation documented in DESIGN.md §8.
//! 3. **Declassify**: a binding annotated `// taint-public: <reason>`
//!    never becomes tainted — the reviewed escape hatch for values that
//!    are secret-derived but published by the protocol (signature
//!    components). A bare marker is itself a finding.
//! 4. **Flag**: data-dependent control flow (`if`/`while`/`match`,
//!    `&&`, `||`), secret-dependent indexing, division/modulus,
//!    fallible `?` early returns, and variable-time `invert()` on
//!    tainted names.
//!
//! A reviewed site is suppressed with `// ct-ok: <reason>`; the reason
//! must contain at least one alphanumeric character, and a bare or
//! decorative marker is itself reported.

use std::collections::HashSet;

use crate::lexer::{self, contains_word, is_ident_char};
use crate::{suppression_near, Finding, Suppression};

/// The suppression marker for this lint.
pub const ALLOW_MARKER: &str = "ct-ok:";

/// The declassification marker: a reviewed statement that a
/// secret-derived binding is public by protocol (e.g. a published
/// signature component).
pub const DECLASS_MARKER: &str = "taint-public:";

/// Initializer fragments that mark a binding as secret-carrying.
pub const TAINT_SOURCES: &[&str] = &[
    ".secret",
    ".master",
    "master_secret",
    "random_nonzero(",
    "::random(",
    ".invert_ct(",
    ".next_u64(",
    ".next_u32(",
];

/// Fields that are public **by declaration** even on a secret-carrying
/// base: `keys.public` is the published public key even though `keys`
/// (a `UserKeyPair`) also holds the secret value. A mention of a
/// tainted name does not count when every occurrence immediately reads
/// one of these fields — the textual stand-in for field sensitivity.
pub const PUBLIC_FIELDS: &[&str] = &["public"];

/// True when `text` mentions `name` other than through a declared
/// public field: `keys.secret` and bare `keys` count, `keys.public`
/// does not.
pub fn mentions_secret(text: &str, name: &str) -> bool {
    let chars: Vec<char> = text.chars().collect();
    let pat: Vec<char> = name.chars().collect();
    if pat.is_empty() || chars.len() < pat.len() {
        return false;
    }
    'occurrence: for i in 0..=chars.len() - pat.len() {
        if chars[i..i + pat.len()] != pat[..]
            || (i > 0 && is_ident_char(chars[i - 1]))
            || chars.get(i + pat.len()).is_some_and(|&c| is_ident_char(c))
        {
            continue;
        }
        let after: String = chars[i + pat.len()..].iter().collect();
        for field in PUBLIC_FIELDS {
            let access = format!(".{field}");
            if after.starts_with(&access)
                && !after[access.len()..]
                    .chars()
                    .next()
                    .is_some_and(is_ident_char)
            {
                continue 'occurrence;
            }
        }
        return true;
    }
    false
}

/// Result of analysing one function body.
#[derive(Debug, Default)]
pub struct BodyAnalysis {
    /// Names carrying taint after the fixed point (seeds included).
    pub tainted: Vec<String>,
    /// Violations as `(1-based file line, message)`, unfiltered by
    /// suppressions — the caller applies its suppression policy.
    pub violations: Vec<(usize, String)>,
    /// Bare `taint-public:` markers (missing a reason) as file lines.
    pub bare_declass: Vec<usize>,
    /// True when the body's return value mentions a tainted name.
    pub returns_secret: bool,
}

/// Analyses one scrubbed function body.
///
/// * `body` — scrubbed text from `{` through the matching `}`;
/// * `body_line` — 1-based file line of the opening brace;
/// * `raw_lines` — the file's raw lines (for `taint-public:` markers);
/// * `seeds` — names tainted on entry (interprocedural parameter taint);
/// * `secret_calls` — callee names whose return value is secret.
pub fn analyze_body(
    body: &str,
    body_line: usize,
    raw_lines: &[&str],
    seeds: &[String],
    secret_calls: &HashSet<String>,
) -> BodyAnalysis {
    let bindings = bindings_of(body);
    let declassified = declassified_names(&bindings, body_line, raw_lines);
    let tainted = taint_fixpoint(&bindings, seeds, secret_calls, &declassified.names);

    let mut violations = Vec::new();
    if !tainted.is_empty() {
        for (off, line) in body.lines().enumerate() {
            let lineno = body_line + off;
            for message in line_violations(line, &tainted) {
                violations.push((lineno, message));
            }
        }
    }
    BodyAnalysis {
        returns_secret: returns_secret(body, &tainted),
        tainted,
        violations,
        bare_declass: declassified.bare_lines,
    }
}

/// Scans one file's source with the function-scoped policy of PR 1;
/// `file` is the label used in findings.
///
/// Each `fn` body is analysed in isolation — a `b` tainted in one
/// function does not condemn every other `b` in the file — and
/// parameters are not taint sources. Bodies inside test spans are
/// skipped outright (tests branch on random draws constantly, by
/// design).
pub fn scan(file: &str, src: &str) -> Vec<Finding> {
    let scrubbed = lexer::scrub(src);
    let spans = lexer::test_spans(&scrubbed);
    let raw_lines: Vec<&str> = src.lines().collect();
    let no_secret_calls = HashSet::new();

    let mut findings = Vec::new();
    for body in fn_bodies(&scrubbed) {
        if lexer::in_spans(body.start_line, &spans) {
            continue;
        }
        let analysis = analyze_body(
            &body.text,
            body.start_line,
            &raw_lines,
            &[],
            &no_secret_calls,
        );
        findings.extend(filter_violations(file, &raw_lines, &spans, &analysis));
    }
    findings
}

/// Applies test-span and suppression filtering to raw violations,
/// producing final findings (including bare-marker reports).
pub fn filter_violations(
    file: &str,
    raw_lines: &[&str],
    spans: &[(usize, usize)],
    analysis: &BodyAnalysis,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for &(lineno, ref message) in &analysis.violations {
        if lexer::in_spans(lineno, spans) {
            continue;
        }
        match suppression_near(raw_lines, lineno, ALLOW_MARKER) {
            Suppression::Justified => {}
            Suppression::MissingReason => findings.push(Finding {
                file: file.to_owned(),
                line: lineno,
                lint: "ct",
                message: format!("{message} (ct-ok present but gives no reason)"),
            }),
            Suppression::None => findings.push(Finding {
                file: file.to_owned(),
                line: lineno,
                lint: "ct",
                message: message.clone(),
            }),
        }
    }
    for &lineno in &analysis.bare_declass {
        if lexer::in_spans(lineno, spans) {
            continue;
        }
        findings.push(Finding {
            file: file.to_owned(),
            line: lineno,
            lint: "ct",
            message: "taint-public marker present but gives no reason".to_owned(),
        });
    }
    findings
}

/// One `fn` body: the 1-based line its `{` opens on, plus its text
/// (from the opening brace through the matching close).
pub(crate) struct FnBody {
    pub(crate) start_line: usize,
    pub(crate) text: String,
}

/// Extracts every top-level-or-method `fn` body. A `fn` nested inside a
/// body already collected is analysed as part of that outer body, like
/// a closure would be.
pub(crate) fn fn_bodies(scrubbed: &str) -> Vec<FnBody> {
    let chars: Vec<char> = scrubbed.chars().collect();
    let mut out = Vec::new();
    let mut last_close = 0usize;
    let mut i = 0;
    while i < chars.len() {
        if !starts_word_at(&chars, i, "fn") {
            i += 1;
            continue;
        }
        if i < last_close {
            // Nested fn inside a body we already captured.
            i += 2;
            continue;
        }
        // Find the body's `{`; a `;` first means a bodyless trait decl.
        // Depth-track brackets so the `;` inside an array type like
        // `[u64; 4]` (params or return) is not mistaken for one.
        let mut j = i + 2;
        let mut depth = 0i32;
        while j < chars.len() {
            match chars[j] {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' | ';' if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= chars.len() || chars[j] == ';' {
            i = j + 1;
            continue;
        }
        let mut depth = 0i32;
        let mut close = j;
        for (k, &c) in chars.iter().enumerate().skip(j) {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push(FnBody {
            start_line: lexer::line_of(scrubbed, j),
            text: chars[j..=close.min(chars.len() - 1)].iter().collect(),
        });
        last_close = close;
        i = j + 1;
    }
    out
}

/// Violation messages for a single scrubbed line.
fn line_violations(line: &str, tainted: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let branchy = contains_word(line, "if")
        || contains_word(line, "while")
        || contains_word(line, "match")
        || line.contains("&&")
        || line.contains("||");
    if branchy {
        if let Some(name) = tainted.iter().find(|name| mentions_secret(line, name)) {
            out.push(format!("branch conditioned on secret-carrying `{name}`"));
        } else if line.contains(".secret") || line.contains(".master") {
            out.push("branch conditioned on a key-material field access".to_owned());
        }
    }
    for name in tainted {
        if line.contains(&format!("{name}.invert()")) {
            out.push(format!(
                "variable-time `invert()` on secret-carrying `{name}` (use `invert_ct()`)"
            ));
        }
    }
    // Secret-dependent indexing: a bracket group whose content mentions
    // a tainted name (memory access pattern leaks the secret).
    for content in index_contents(line) {
        if let Some(name) = tainted.iter().find(|name| mentions_secret(&content, name)) {
            out.push(format!(
                "secret-dependent index `[{}]` on `{name}`",
                content.trim()
            ));
        }
    }
    // Division/modulus is variable-time on many cores; flag it when a
    // tainted name shares the expression.
    if has_div_operator(line) {
        if let Some(name) = tainted.iter().find(|name| mentions_secret(line, name)) {
            out.push(format!(
                "possible variable-time division/modulus involving secret-carrying `{name}`"
            ));
        }
    }
    // A `?` on a secret-derived fallible value is a data-dependent early
    // return: the caller observes where the function gave up.
    if line.contains('?') {
        if let Some(name) = tainted.iter().find(|name| mentions_secret(line, name)) {
            out.push(format!(
                "fallible `?` early return on secret-carrying `{name}`"
            ));
        }
    }
    out
}

/// Contents of `[...]` groups on a line that follow a value expression
/// (indexing), skipping array literals/types (top-level `,`/`;`).
fn index_contents(line: &str) -> Vec<String> {
    let chars: Vec<char> = line.chars().collect();
    let mut out = Vec::new();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let prev = chars[..i]
            .iter()
            .rev()
            .copied()
            .find(|c| !c.is_whitespace());
        if !prev.is_some_and(|p| is_ident_char(p) || p == ')' || p == ']') {
            continue;
        }
        let mut depth = 0i32;
        let mut close = None;
        for (j, &cj) in chars.iter().enumerate().skip(i) {
            match cj {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else { continue };
        let content: String = chars[i + 1..close].iter().collect();
        let top_level_sep = {
            let mut d = 0i32;
            let mut found = false;
            for cc in content.chars() {
                match cc {
                    '(' | '[' | '{' => d += 1,
                    ')' | ']' | '}' => d -= 1,
                    ',' | ';' if d == 0 => {
                        found = true;
                        break;
                    }
                    _ => {}
                }
            }
            found
        };
        if !top_level_sep {
            out.push(content);
        }
    }
    out
}

/// True when the line contains `/` or `%` as a binary operator (after
/// scrubbing, `/` can only be division — comments are gone).
fn has_div_operator(line: &str) -> bool {
    let chars: Vec<char> = line.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '/' || c == '%' {
            // `/=` and `%=` still divide; `//` cannot survive scrub.
            let prev = chars[..i]
                .iter()
                .rev()
                .copied()
                .find(|c| !c.is_whitespace());
            if prev.is_some_and(|p| is_ident_char(p) || p == ')' || p == ']') {
                return true;
            }
        }
    }
    false
}

/// A binding: `(name, right-hand side, 0-based line offset in body)`.
pub(crate) type Binding = (String, String, usize);

/// `let` bindings and plain/compound assignments, textually extracted.
/// Pattern bindings (`let Some(x)`, `let (a, b)`) are skipped: the lint
/// only tracks plain named bindings, which is what the scheme code uses
/// for secrets. Shared with the validation-state pass in
/// [`crate::validate`], which tracks decoded group values through the
/// same binding shapes.
pub(crate) fn bindings_of(scrubbed: &str) -> Vec<Binding> {
    let chars: Vec<char> = scrubbed.chars().collect();
    let mut out = Vec::new();
    let mut line = 0usize;
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if starts_word_at(&chars, i, "let") {
            i += 3;
            i = skip_ws(&chars, i);
            if starts_word_at(&chars, i, "mut") {
                i += 3;
                i = skip_ws(&chars, i);
            }
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            let name: String = chars[start..i].iter().collect();
            let lowercase_start = name
                .chars()
                .next()
                .is_some_and(|c| c.is_lowercase() || c == '_');
            let decl_line = line;
            // Initializer: everything up to the statement's semicolon.
            let init_start = i;
            while i < chars.len() && chars[i] != ';' {
                if chars[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            if !name.is_empty() && name != "_" && lowercase_start {
                let init: String = chars[init_start..i].iter().collect();
                if init.trim_start().starts_with([':', '=']) {
                    out.push((name, init, decl_line));
                }
            }
            continue;
        }
        if chars[i] == '=' && is_plain_or_compound_assign(&chars, i) {
            if let Some(name) = assigned_base_name(&chars, i) {
                let decl_line = line;
                let rhs_start = i + 1;
                let mut j = rhs_start;
                let mut rhs_line = line;
                while j < chars.len() && chars[j] != ';' {
                    if chars[j] == '\n' {
                        rhs_line += 1;
                    }
                    j += 1;
                }
                let rhs: String = chars[rhs_start..j].iter().collect();
                out.push((name, rhs, decl_line));
                line = rhs_line;
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// True when the `=` at `i` is a plain assignment or the tail of a
/// compound one (`+=`, `^=`, …) — not `==`, `<=`, `=>`, `..=`, etc.
fn is_plain_or_compound_assign(chars: &[char], i: usize) -> bool {
    if chars.get(i + 1) == Some(&'=') || chars.get(i + 1) == Some(&'>') {
        return false;
    }
    !matches!(
        i.checked_sub(1).and_then(|p| chars.get(p)),
        Some(&p) if "=!<>.".contains(p)
    )
}

/// The base identifier of the place being assigned at the `=` at `i`:
/// `t` for `t[j] = v`, `out` for `out.x += v`, `self` for
/// `self.0 = v`. `None` when the place is not a simple chain.
fn assigned_base_name(chars: &[char], i: usize) -> Option<String> {
    let mut j = i; // exclusive end of the place
                   // Skip one compound-operator char (`+=`, `|=`, …).
    if let Some(p) = j.checked_sub(1) {
        if "+-*/%&|^".contains(chars[p]) {
            j = p;
        }
    }
    // Skip trailing whitespace.
    while j > 0 && chars[j - 1].is_whitespace() {
        j -= 1;
    }
    let end = j;
    // Walk back over the place chain: idents, `.`, balanced `[..]`.
    while let Some(p) = j.checked_sub(1) {
        let c = chars[p];
        if is_ident_char(c) || c == '.' {
            j = p;
            continue;
        }
        if c == ']' {
            let mut depth = 0i32;
            let mut k = p;
            loop {
                if chars[k] == ']' {
                    depth += 1;
                } else if chars[k] == '[' {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k = k.checked_sub(1)?;
            }
            j = k;
            continue;
        }
        break;
    }
    if j >= end {
        return None;
    }
    // The place must start at a statement-ish boundary, not mid-expression.
    let before = chars[..j]
        .iter()
        .rev()
        .copied()
        .find(|c| !c.is_whitespace());
    if before.is_some_and(|b| !"{};".contains(b)) {
        return None;
    }
    let place: String = chars[j..end].iter().collect();
    let base: String = place.chars().take_while(|c| is_ident_char(*c)).collect();
    let ok_start = base
        .chars()
        .next()
        .is_some_and(|c| c.is_lowercase() || c == '_');
    (ok_start && !base.is_empty() && base != "_").then_some(base)
}

/// Names declassified by a justified `taint-public:` marker, plus the
/// lines of bare markers (which are themselves findings).
struct Declassified {
    names: HashSet<String>,
    bare_lines: Vec<usize>,
}

fn declassified_names(bindings: &[Binding], body_line: usize, raw_lines: &[&str]) -> Declassified {
    let mut names = HashSet::new();
    let mut bare_lines = Vec::new();
    for (name, _, off) in bindings {
        let file_line = body_line + off;
        match suppression_near(raw_lines, file_line, DECLASS_MARKER) {
            Suppression::Justified => {
                names.insert(name.clone());
            }
            Suppression::MissingReason => bare_lines.push(file_line),
            Suppression::None => {}
        }
    }
    bare_lines.sort_unstable();
    bare_lines.dedup();
    Declassified { names, bare_lines }
}

/// Expands the taint set until stable: seeded by [`TAINT_SOURCES`], the
/// caller's seed names, and secret-returning calls; propagated through
/// bindings whose right-hand side mentions tainted names.
fn taint_fixpoint(
    bindings: &[Binding],
    seeds: &[String],
    secret_calls: &HashSet<String>,
    declassified: &HashSet<String>,
) -> Vec<String> {
    let mut tainted: Vec<String> = seeds
        .iter()
        .filter(|s| !declassified.contains(*s))
        .cloned()
        .collect();
    loop {
        let mut changed = false;
        for (name, init, _) in bindings {
            if tainted.contains(name) || declassified.contains(name) {
                continue;
            }
            let from_source = TAINT_SOURCES.iter().any(|s| init.contains(s));
            let from_taint = tainted.iter().any(|t| mentions_secret(init, t));
            let from_call = secret_calls.iter().any(|c| contains_call(init, c));
            if from_source || from_taint || from_call {
                tainted.push(name.clone());
                changed = true;
            }
        }
        if !changed {
            return tainted;
        }
    }
}

/// True when `text` contains a call to `name` (the word followed by
/// an opening paren, ignoring whitespace).
pub(crate) fn contains_call(text: &str, name: &str) -> bool {
    let chars: Vec<char> = text.chars().collect();
    let pat: Vec<char> = name.chars().collect();
    if pat.is_empty() || chars.len() < pat.len() {
        return false;
    }
    for i in 0..=chars.len() - pat.len() {
        if chars[i..i + pat.len()] == pat[..]
            && (i == 0 || !is_ident_char(chars[i - 1]))
            && chars[i + pat.len()..]
                .iter()
                .find(|c| !c.is_whitespace())
                .is_some_and(|&c| c == '(')
        {
            return true;
        }
    }
    false
}

/// True when the body's return value mentions a tainted name: either an
/// explicit `return <expr>` or the tail expression before the final `}`.
fn returns_secret(body: &str, tainted: &[String]) -> bool {
    if tainted.is_empty() {
        return false;
    }
    for line in body.lines() {
        let t = line.trim_start();
        if t.starts_with("return ") && tainted.iter().any(|n| mentions_secret(t, n)) {
            return true;
        }
    }
    // Tail expression: the text after the last `;`, `{`, or inner `}`,
    // with the body's final `}` stripped.
    let trimmed = body.trim_end();
    let without_close = trimmed.strip_suffix('}').unwrap_or(trimmed);
    let tail_start = without_close.rfind([';', '{', '}']).map_or(0, |p| p + 1);
    let tail = &without_close[tail_start..];
    tainted.iter().any(|n| mentions_secret(tail, n))
}

fn starts_word_at(chars: &[char], i: usize, word: &str) -> bool {
    let pat: Vec<char> = word.chars().collect();
    i + pat.len() <= chars.len()
        && chars[i..i + pat.len()] == pat[..]
        && (i == 0 || !is_ident_char(chars[i - 1]))
        && chars.get(i + pat.len()).is_none_or(|c| !is_ident_char(*c))
}

fn skip_ws(chars: &[char], mut i: usize) -> usize {
    while i < chars.len() && chars[i].is_whitespace() {
        i += 1;
    }
    i
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    const FIXTURE: &str = include_str!("../fixtures/ct_cases.rs");

    #[test]
    fn fixture_violations_are_found() {
        let findings = scan("fixtures/ct_cases.rs", FIXTURE);
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("secret-carrying `x`")),
            "direct branch on rng draw: {msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("secret-carrying `derived`")),
            "propagated taint: {msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("variable-time `invert()`")),
            "invert on secret: {msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("gives no reason")),
            "bare ct-ok must be reported: {msgs:?}"
        );
    }

    #[test]
    fn fixture_clean_lines_stay_clean() {
        for f in scan("fixtures/ct_cases.rs", FIXTURE) {
            let line = FIXTURE.lines().nth(f.line - 1).unwrap_or("");
            assert!(
                !line.contains("CLEAN"),
                "line {} marked CLEAN was flagged: {}",
                f.line,
                f.message
            );
        }
    }

    #[test]
    fn justified_ct_ok_suppresses() {
        let src = "fn f(rng: &mut R) {\n    let x = Fr::random(rng);\n    // ct-ok: rejection sampling leaks only candidate-was-zero\n    if x.is_zero() { retry(); }\n}\n";
        assert!(scan("x.rs", src).is_empty());
    }

    #[test]
    fn taint_propagates_through_lets() {
        let src = "fn f(k: &Keys) {\n    let a = k.secret.invert_ct();\n    let b = mul(&a);\n    if b.is_identity() { bail(); }\n}\n";
        let findings = scan("x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`b`"));
    }

    #[test]
    fn taint_propagates_through_assignments() {
        let src = "fn f(k: &Keys) {\n    let mut acc = Acc::zero();\n    acc = acc.mix(&k.secret.invert_ct());\n    if acc.is_zero() { bail(); }\n}\n";
        let findings = scan("x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`acc`"));
    }

    #[test]
    fn parameters_are_not_sources() {
        let src = "fn f(secret_ish: u64) {\n    if secret_ish > 0 { g(); }\n}\n";
        assert!(scan("x.rs", src).is_empty());
    }

    #[test]
    fn taint_is_function_scoped() {
        // `y` is secret in `f` but a perfectly public coordinate in `g`;
        // only the branch inside `f` may fire.
        let src = "fn f(rng: &mut R) {\n    let y = Fr::random(rng);\n    if y.is_zero() { retry(); }\n}\n\nfn g(p: &Point) {\n    let y = p.y;\n    if y.is_zero() { infinity(); }\n}\n";
        let findings = scan("x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(k: &Keys) {\n        let x = k.secret;\n        if x.is_zero() { panic!(); }\n    }\n}\n";
        assert!(scan("x.rs", src).is_empty());
    }

    #[test]
    fn seeded_params_taint_the_body() {
        let raw: Vec<&str> = vec![];
        let a = analyze_body(
            "{\n    if k.is_zero() { bail(); }\n}",
            1,
            &raw,
            &["k".to_owned()],
            &HashSet::new(),
        );
        assert_eq!(a.violations.len(), 1);
        assert!(a.violations[0].1.contains("`k`"));
    }

    #[test]
    fn secret_returning_calls_taint_bindings() {
        let raw: Vec<&str> = vec![];
        let mut secret_calls = HashSet::new();
        secret_calls.insert("derive_key".to_owned());
        let a = analyze_body(
            "{\n    let k = derive_key(seed);\n    if k.is_zero() { bail(); }\n}",
            1,
            &raw,
            &[],
            &secret_calls,
        );
        assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
        assert!(!a.returns_secret);
    }

    #[test]
    fn returns_secret_via_tail_and_return() {
        let raw: Vec<&str> = vec![];
        let seeds = ["k".to_owned()];
        let tail = analyze_body("{\n    k.double()\n}", 1, &raw, &seeds, &HashSet::new());
        assert!(tail.returns_secret);
        let explicit = analyze_body(
            "{\n    return k.double();\n}",
            1,
            &raw,
            &seeds,
            &HashSet::new(),
        );
        assert!(explicit.returns_secret);
        let neither = analyze_body("{\n    g(&k);\n}", 1, &raw, &seeds, &HashSet::new());
        assert!(!neither.returns_secret);
    }

    #[test]
    fn declassified_bindings_drop_taint() {
        let src = "fn f(rng: &mut R) -> G2 {\n    let n = Fr::random(rng);\n    // taint-public: R is a published signature component\n    let r = ladder(&n);\n    if r.is_identity() { retry(); }\n    r\n}\n";
        // `ladder` is not a secret-returning call here, but `r` would be
        // tainted through `n`… unless declassified.
        let findings = scan("x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn bare_declass_marker_is_reported() {
        let src = "fn f(rng: &mut R) -> G2 {\n    let n = Fr::random(rng);\n    // taint-public:\n    let r = ladder(&n);\n    r\n}\n";
        let findings = scan("x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("gives no reason"));
    }

    #[test]
    fn secret_index_division_and_try_are_flagged() {
        let src = "fn f(k: &Keys) {\n    let d = k.secret;\n    let e = table[d];\n    let q = n / d;\n    let w = d.checked()?;\n}\n";
        let msgs: Vec<String> = scan("x.rs", src).into_iter().map(|f| f.message).collect();
        assert!(
            msgs.iter().any(|m| m.contains("secret-dependent index")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("division/modulus")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("`?` early return")),
            "{msgs:?}"
        );
    }

    #[test]
    fn plain_loop_indexing_is_not_flagged() {
        let src = "fn f(k: &Keys) {\n    let d = k.secret;\n    let mut out = [0u64; 4];\n    for i in 0..4 { out[i] = base[i]; }\n    g(&d);\n}\n";
        assert!(scan("x.rs", src).is_empty());
    }
}
