//! The constant-time discipline lint.
//!
//! McCLS's selling point is a cheap signing path on exposed mobile
//! nodes, which makes timing leaks part of the threat model. This lint
//! flags data-dependent control flow on secret values in the scheme and
//! curve crates.
//!
//! It runs a deliberately small, function-local taint pass:
//!
//! 1. **Seed**: an initializer that touches key material or an RNG draw
//!    (`.secret`, `.master`, `master_secret`, `random_nonzero(..)`,
//!    `Fr::random(..)`, `.invert_ct(..)`, `.next_u64()`/`.next_u32()`)
//!    marks its `let` binding as secret-carrying.
//! 2. **Propagate**: any `let` whose initializer mentions a tainted
//!    name is tainted too, to a fixed point, within the same function
//!    body — taint never crosses function boundaries, so a `b` that is
//!    secret in one function does not condemn every other `b` in the
//!    file.
//! 3. **Flag**: a non-test line containing `if`/`while`/`match`, `&&`,
//!    or `||` together with a tainted name (or a direct `.secret` /
//!    `.master` access) is a finding, as is a call to the
//!    variable-time `invert()` on a tainted name.
//!
//! Function parameters are *not* taint sources — the lint tracks where
//! secrets are born, not every value they might flow into across calls.
//! That keeps the signal high; the generic curve ladder is instead
//! covered by the runtime `mul_scalar_ct`/`ct_select` API this lint
//! pushes callers toward.
//!
//! A reviewed site is suppressed with `// ct-ok: <reason>`; the reason
//! is mandatory, and a bare marker is itself reported.

use crate::lexer::{self, contains_word, is_ident_char};
use crate::{suppression_near, Finding, Suppression};

/// The suppression marker for this lint.
pub const ALLOW_MARKER: &str = "ct-ok:";

/// Initializer fragments that mark a binding as secret-carrying.
const TAINT_SOURCES: &[&str] = &[
    ".secret",
    ".master",
    "master_secret",
    "random_nonzero(",
    "::random(",
    ".invert_ct(",
    ".next_u64(",
    ".next_u32(",
];

/// Scans one file's source; `file` is the label used in findings.
///
/// The taint pass is **function-scoped**: each `fn` body is analysed in
/// isolation, so a `b` tainted in one function does not condemn every
/// other `b` in the file. Bodies inside test spans are skipped outright
/// (tests branch on random draws constantly, by design).
pub fn scan(file: &str, src: &str) -> Vec<Finding> {
    let scrubbed = lexer::scrub(src);
    let spans = lexer::test_spans(&scrubbed);
    let raw_lines: Vec<&str> = src.lines().collect();

    let mut findings = Vec::new();
    for body in fn_bodies(&scrubbed) {
        if lexer::in_spans(body.start_line, &spans) {
            continue;
        }
        let bindings = let_bindings(&body.text);
        let tainted = taint_fixpoint(&bindings);
        if tainted.is_empty() {
            continue;
        }
        for (off, line) in body.text.lines().enumerate() {
            let lineno = body.start_line + off;
            if lexer::in_spans(lineno, &spans) {
                continue;
            }
            for message in line_violations(line, &tainted) {
                match suppression_near(&raw_lines, lineno, ALLOW_MARKER) {
                    Suppression::Justified => {}
                    Suppression::MissingReason => findings.push(Finding {
                        file: file.to_owned(),
                        line: lineno,
                        lint: "ct",
                        message: format!("{message} (ct-ok present but gives no reason)"),
                    }),
                    Suppression::None => findings.push(Finding {
                        file: file.to_owned(),
                        line: lineno,
                        lint: "ct",
                        message,
                    }),
                }
            }
        }
    }
    findings
}

/// One `fn` body: the 1-based line its `{` opens on, plus its text
/// (from the opening brace through the matching close).
struct FnBody {
    start_line: usize,
    text: String,
}

/// Extracts every top-level-or-method `fn` body. A `fn` nested inside a
/// body already collected is analysed as part of that outer body, like
/// a closure would be.
fn fn_bodies(scrubbed: &str) -> Vec<FnBody> {
    let chars: Vec<char> = scrubbed.chars().collect();
    let mut out = Vec::new();
    let mut last_close = 0usize;
    let mut i = 0;
    while i < chars.len() {
        if !starts_word_at(&chars, i, "fn") {
            i += 1;
            continue;
        }
        if i < last_close {
            // Nested fn inside a body we already captured.
            i += 2;
            continue;
        }
        // Find the body's `{`; a `;` first means a bodyless trait decl.
        let mut j = i + 2;
        while j < chars.len() && chars[j] != '{' && chars[j] != ';' {
            j += 1;
        }
        if j >= chars.len() || chars[j] == ';' {
            i = j + 1;
            continue;
        }
        let mut depth = 0i32;
        let mut close = j;
        for (k, &c) in chars.iter().enumerate().skip(j) {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push(FnBody {
            start_line: lexer::line_of(scrubbed, j),
            text: chars[j..=close.min(chars.len() - 1)].iter().collect(),
        });
        last_close = close;
        i = j + 1;
    }
    out
}

/// Violation messages for a single scrubbed line.
fn line_violations(line: &str, tainted: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let branchy = contains_word(line, "if")
        || contains_word(line, "while")
        || contains_word(line, "match")
        || line.contains("&&")
        || line.contains("||");
    if branchy {
        if let Some(name) = tainted.iter().find(|name| contains_word(line, name)) {
            out.push(format!("branch conditioned on secret-carrying `{name}`"));
        } else if line.contains(".secret") || line.contains(".master") {
            out.push("branch conditioned on a key-material field access".to_owned());
        }
    }
    for name in tainted {
        if line.contains(&format!("{name}.invert()")) {
            out.push(format!(
                "variable-time `invert()` on secret-carrying `{name}` (use `invert_ct()`)"
            ));
        }
    }
    out
}

/// `let` bindings as `(name, initializer)` pairs, textually extracted.
/// Pattern bindings (`let Some(x)`, `let (a, b)`) are skipped: the lint
/// only tracks plain named bindings, which is what the scheme code uses
/// for secrets.
fn let_bindings(scrubbed: &str) -> Vec<(String, String)> {
    let chars: Vec<char> = scrubbed.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if !starts_word_at(&chars, i, "let") {
            i += 1;
            continue;
        }
        i += 3;
        i = skip_ws(&chars, i);
        if starts_word_at(&chars, i, "mut") {
            i += 3;
            i = skip_ws(&chars, i);
        }
        let start = i;
        while i < chars.len() && is_ident_char(chars[i]) {
            i += 1;
        }
        let name: String = chars[start..i].iter().collect();
        let lowercase_start = name
            .chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_');
        // Initializer: everything up to the statement's semicolon.
        let init_start = i;
        while i < chars.len() && chars[i] != ';' {
            i += 1;
        }
        if !name.is_empty() && name != "_" && lowercase_start {
            let init: String = chars[init_start..i].iter().collect();
            if init.trim_start().starts_with([':', '=']) {
                out.push((name, init));
            }
        }
    }
    out
}

/// Expands the taint set until stable: seeded by [`TAINT_SOURCES`],
/// propagated through initializers that mention tainted names.
fn taint_fixpoint(bindings: &[(String, String)]) -> Vec<String> {
    let mut tainted: Vec<String> = Vec::new();
    loop {
        let mut changed = false;
        for (name, init) in bindings {
            if tainted.contains(name) {
                continue;
            }
            let from_source = TAINT_SOURCES.iter().any(|s| init.contains(s));
            let from_taint = tainted.iter().any(|t| contains_word(init, t));
            if from_source || from_taint {
                tainted.push(name.clone());
                changed = true;
            }
        }
        if !changed {
            return tainted;
        }
    }
}

fn starts_word_at(chars: &[char], i: usize, word: &str) -> bool {
    let pat: Vec<char> = word.chars().collect();
    i + pat.len() <= chars.len()
        && chars[i..i + pat.len()] == pat[..]
        && (i == 0 || !is_ident_char(chars[i - 1]))
        && chars.get(i + pat.len()).is_none_or(|c| !is_ident_char(*c))
}

fn skip_ws(chars: &[char], mut i: usize) -> usize {
    while i < chars.len() && chars[i].is_whitespace() {
        i += 1;
    }
    i
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    const FIXTURE: &str = include_str!("../fixtures/ct_cases.rs");

    #[test]
    fn fixture_violations_are_found() {
        let findings = scan("fixtures/ct_cases.rs", FIXTURE);
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("secret-carrying `x`")),
            "direct branch on rng draw: {msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("secret-carrying `derived`")),
            "propagated taint: {msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("variable-time `invert()`")),
            "invert on secret: {msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("gives no reason")),
            "bare ct-ok must be reported: {msgs:?}"
        );
    }

    #[test]
    fn fixture_clean_lines_stay_clean() {
        for f in scan("fixtures/ct_cases.rs", FIXTURE) {
            let line = FIXTURE.lines().nth(f.line - 1).unwrap_or("");
            assert!(
                !line.contains("CLEAN"),
                "line {} marked CLEAN was flagged: {}",
                f.line,
                f.message
            );
        }
    }

    #[test]
    fn justified_ct_ok_suppresses() {
        let src = "fn f(rng: &mut R) {\n    let x = Fr::random(rng);\n    // ct-ok: rejection sampling leaks only candidate-was-zero\n    if x.is_zero() { retry(); }\n}\n";
        assert!(scan("x.rs", src).is_empty());
    }

    #[test]
    fn taint_propagates_through_lets() {
        let src = "fn f(k: &Keys) {\n    let a = k.secret.invert_ct();\n    let b = mul(&a);\n    if b.is_identity() { bail(); }\n}\n";
        let findings = scan("x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`b`"));
    }

    #[test]
    fn parameters_are_not_sources() {
        let src = "fn f(secret_ish: u64) {\n    if secret_ish > 0 { g(); }\n}\n";
        assert!(scan("x.rs", src).is_empty());
    }

    #[test]
    fn taint_is_function_scoped() {
        // `y` is secret in `f` but a perfectly public coordinate in `g`;
        // only the branch inside `f` may fire.
        let src = "fn f(rng: &mut R) {\n    let y = Fr::random(rng);\n    if y.is_zero() { retry(); }\n}\n\nfn g(p: &Point) {\n    let y = p.y;\n    if y.is_zero() { infinity(); }\n}\n";
        let findings = scan("x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(k: &Keys) {\n        let x = k.secret;\n        if x.is_zero() { panic!(); }\n    }\n}\n";
        assert!(scan("x.rs", src).is_empty());
    }
}
