//! A lightweight Rust item parser on top of [`crate::lexer`].
//!
//! The interprocedural passes ([`crate::taint`], [`crate::reach`]) need
//! more structure than "lines of scrubbed text": which functions exist,
//! what their parameters are, and which calls each body makes. This
//! module extracts exactly that — `fn` signatures (with the owning
//! `impl` type), parameter names and types, return types, and every
//! call expression with its receiver and argument texts — from scrubbed
//! source, without a full Rust grammar.
//!
//! Deliberate approximations, documented in DESIGN.md §8:
//!
//! * functions inside `macro_rules!` bodies are parsed like ordinary
//!   functions (their `$metavariables` survive as identifiers), which is
//!   what makes the `montgomery_field!`-generated arithmetic visible to
//!   the taint pass at all;
//! * pattern parameters (`(a, b): (Fr, Fr)`) are kept with an empty
//!   name and never carry taint;
//! * nested `fn` items are folded into their enclosing body, like
//!   closures.

use crate::lexer::{self, is_ident_char};

/// One parsed source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Path label used in findings (workspace-relative).
    pub path: String,
    /// The raw source lines, for suppression-comment lookup.
    pub raw_lines: Vec<String>,
    /// All `fn` items found in the file.
    pub fns: Vec<FnItem>,
}

/// A parsed `fn` item.
#[derive(Debug)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// The `impl`/`trait` type the function is defined on, if any.
    pub owner: Option<String>,
    /// Parameters in order; `self` receivers become a parameter named
    /// `self` whose type is the owner.
    pub params: Vec<Param>,
    /// Return type text (empty for `()`-returning functions).
    pub ret: String,
    /// Scrubbed body text, from the opening `{` through the matching
    /// closing brace.
    pub body: String,
    /// 1-based line the `fn` keyword sits on (for declaration-level
    /// suppression markers on multi-line signatures).
    pub decl_line: usize,
    /// 1-based line the body's `{` opens on.
    pub body_line: usize,
    /// True when the item sits inside a `#[cfg(test)]`/`#[test]` span.
    pub is_test: bool,
    /// Call expressions made anywhere in the body.
    pub calls: Vec<Call>,
}

/// One function parameter.
#[derive(Debug)]
pub struct Param {
    /// Binding name; empty for pattern parameters.
    pub name: String,
    /// Type text (trimmed).
    pub ty: String,
}

/// One call expression inside a function body.
#[derive(Debug)]
pub struct Call {
    /// Last path segment — the function or method name.
    pub callee: String,
    /// The path segment before the name (`ops` in `ops::mul_g1`,
    /// `Self` in `Self::mont_mul`), if any.
    pub qualifier: Option<String>,
    /// True for `.name(...)` method-call syntax.
    pub is_method: bool,
    /// Receiver expression text for method calls (`keys.secret` in
    /// `keys.secret.invert_ct()`).
    pub receiver: Option<String>,
    /// Argument expression texts, split on top-level commas.
    pub args: Vec<String>,
    /// 1-based source line of the call.
    pub line: usize,
    /// How often the enclosing control flow can repeat this call.
    pub ctx: LoopCtx,
}

/// Execution multiplicity of a call site, derived from the loop and
/// iterator-closure structure around it. Used by the operation-count
/// analysis ([`crate::opcount`]) to scale atomic costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopCtx {
    /// Straight-line code: at most once per caller invocation.
    Straight,
    /// Inside exactly one `for` loop or iterator-adaptor closure: once
    /// per item of a single collection (symbolic `n`).
    PerItem,
    /// Inside a `while`/`loop` or nested per-item contexts: no static
    /// bound exists.
    Unbounded,
}

impl FnItem {
    /// The parameter names that can carry taint (plain bindings only).
    pub fn param_names(&self) -> Vec<&str> {
        self.params
            .iter()
            .filter(|p| !p.name.is_empty())
            .map(|p| p.name.as_str())
            .collect()
    }
}

/// Parses a batch of `(path, source)` pairs.
pub fn parse_files(sources: &[(String, String)]) -> Vec<ParsedFile> {
    sources
        .iter()
        .map(|(path, src)| parse_file(path, src))
        .collect()
}

/// Parses one file.
pub fn parse_file(path: &str, src: &str) -> ParsedFile {
    let scrubbed = lexer::scrub(src);
    let spans = lexer::test_spans(&scrubbed);
    let chars: Vec<char> = scrubbed.chars().collect();
    let impls = impl_spans(&chars);

    let mut fns = Vec::new();
    let mut last_close = 0usize;
    let mut i = 0;
    while i < chars.len() {
        if !starts_word_at(&chars, i, "fn") {
            i += 1;
            continue;
        }
        if i < last_close {
            // Nested fn inside a body we already captured.
            i += 2;
            continue;
        }
        let Some(item) = parse_fn(&chars, &scrubbed, i, &impls, &spans) else {
            i += 2;
            continue;
        };
        let body_end = item.1;
        fns.push(item.0);
        last_close = body_end;
        i += 2;
    }

    ParsedFile {
        path: path.to_owned(),
        raw_lines: src.lines().map(str::to_owned).collect(),
        fns,
    }
}

/// `impl`/`trait` block spans: `(open_brace, close_brace, owner_type)`.
fn impl_spans(chars: &[char]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let is_impl = starts_word_at(chars, i, "impl");
        let is_trait = starts_word_at(chars, i, "trait");
        if !is_impl && !is_trait {
            i += 1;
            continue;
        }
        let kw_len = if is_impl { 4 } else { 5 };
        let header_start = i + kw_len;
        // The block body is the first top-level `{` after the keyword.
        let Some(open) = (header_start..chars.len()).find(|&j| chars[j] == '{') else {
            break;
        };
        let header: String = chars[header_start..open].iter().collect();
        let owner = if is_trait {
            first_type_name(&header)
        } else {
            impl_owner(&header)
        };
        let close = match_brace(chars, open).unwrap_or(chars.len().saturating_sub(1));
        if let Some(owner) = owner {
            out.push((open, close, owner));
        }
        i = open + 1;
    }
    out
}

/// Owner type of an `impl` header: the type after `for` when present
/// (`impl Trait for Type`), else the first type name.
fn impl_owner(header: &str) -> Option<String> {
    let chars: Vec<char> = header.chars().collect();
    // Find ` for ` at angle-depth 0 so `Iterator<Item = X> for Y` works.
    let mut depth = 0i32;
    let mut j = 0;
    let mut for_pos = None;
    while j < chars.len() {
        match chars[j] {
            '<' => depth += 1,
            '>' if j > 0 && chars[j - 1] != '-' => depth -= 1,
            _ => {}
        }
        if depth == 0 && starts_word_at(&chars, j, "for") {
            for_pos = Some(j + 3);
            break;
        }
        j += 1;
    }
    let rest: String = match for_pos {
        Some(p) => chars[p..].iter().collect(),
        None => skip_generics(&chars),
    };
    first_type_name(&rest)
}

/// Drops a leading `<...>` generics group (after `impl`).
fn skip_generics(chars: &[char]) -> String {
    let mut j = 0;
    while j < chars.len() && chars[j].is_whitespace() {
        j += 1;
    }
    if chars.get(j) == Some(&'<') {
        let mut depth = 0i32;
        while j < chars.len() {
            match chars[j] {
                '<' => depth += 1,
                '>' if chars.get(j.wrapping_sub(1)) != Some(&'-') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    chars[j.min(chars.len())..].iter().collect()
}

/// The significant type name in a header fragment: the **last** segment
/// of the leading path (`core::ops::Add` → `Add`), ignoring generics.
/// `$metavariables` are kept verbatim so macro-generated impls resolve.
fn first_type_name(fragment: &str) -> Option<String> {
    let chars: Vec<char> = fragment.chars().collect();
    let mut j = 0;
    let mut last = None;
    while j < chars.len() {
        let c = chars[j];
        if c.is_whitespace() || c == '&' {
            j += 1;
            continue;
        }
        if c == ':' {
            j += 1;
            continue;
        }
        if c == '$' || is_ident_char(c) {
            let start = j;
            j += 1;
            while j < chars.len() && is_ident_char(chars[j]) {
                j += 1;
            }
            let word: String = chars[start..j].iter().collect();
            if word == "dyn" || word == "mut" || word == "crate" {
                continue;
            }
            last = Some(word);
            // Continue only through `::`; anything else ends the path.
            if chars.get(j) == Some(&':') && chars.get(j + 1) == Some(&':') {
                j += 2;
                continue;
            }
            break;
        }
        if c == '<' {
            break;
        }
        j += 1;
    }
    last
}

/// Parses the `fn` starting at `start` (index of the `fn` keyword).
/// Returns the item and the char index of its closing brace.
fn parse_fn(
    chars: &[char],
    scrubbed: &str,
    start: usize,
    impls: &[(usize, usize, String)],
    spans: &[(usize, usize)],
) -> Option<(FnItem, usize)> {
    let mut i = start + 2;
    i = skip_ws(chars, i);
    let name_start = i;
    while i < chars.len() && is_ident_char(chars[i]) {
        i += 1;
    }
    if i == name_start {
        return None;
    }
    let name: String = chars[name_start..i].iter().collect();

    // Find the parameter list `(` at angle-depth 0 (skipping generics,
    // where `Fn(..) -> X` bounds may nest parens and arrows).
    let mut depth = 0i32;
    let mut paren_open = None;
    while i < chars.len() {
        match chars[i] {
            '<' => depth += 1,
            '>' if i > 0 && chars[i - 1] != '-' => depth -= 1,
            '(' if depth == 0 => {
                paren_open = Some(i);
                break;
            }
            '{' | ';' => return None,
            _ => {}
        }
        i += 1;
    }
    let paren_open = paren_open?;
    let paren_close = match_paren(chars, paren_open)?;
    let owner = impls
        .iter()
        .find(|(open, close, _)| *open < start && start < *close)
        .map(|(_, _, o)| o.clone());
    let params_text: String = chars[paren_open + 1..paren_close].iter().collect();
    let params = parse_params(&params_text, owner.as_deref());

    // Return type and body: scan to the body `{` or a `;` (trait decl).
    // Depth-track brackets so the `;` inside an array type like
    // `-> [u64; 6]` is not mistaken for a declaration terminator.
    let mut j = paren_close + 1;
    let mut ret = String::new();
    let mut body_open = None;
    let mut bracket = 0i32;
    while j < chars.len() {
        match chars[j] {
            '(' | '[' => bracket += 1,
            ')' | ']' => bracket -= 1,
            '{' if bracket == 0 => {
                body_open = Some(j);
                break;
            }
            ';' if bracket == 0 => break,
            '-' if chars.get(j + 1) == Some(&'>') => {
                // Return type: up to `{`, `;`, or a `where` clause,
                // all at bracket depth 0.
                let mut k = j + 2;
                let ret_start = k;
                let mut d = 0i32;
                while k < chars.len() {
                    match chars[k] {
                        '(' | '[' => d += 1,
                        ')' | ']' => d -= 1,
                        '{' | ';' if d == 0 => break,
                        _ if d == 0 && starts_word_at(chars, k, "where") => break,
                        _ => {}
                    }
                    k += 1;
                }
                ret = chars[ret_start..k]
                    .iter()
                    .collect::<String>()
                    .trim()
                    .to_owned();
                j = k;
                continue;
            }
            _ => {}
        }
        j += 1;
    }
    let body_open = body_open?;
    let body_close = match_brace(chars, body_open)?;
    let body: String = chars[body_open..=body_close].iter().collect();
    let body_line = lexer::line_of(scrubbed, body_open);
    let calls = collect_calls(&body, body_line);

    Some((
        FnItem {
            name,
            owner,
            params,
            ret,
            body,
            decl_line: lexer::line_of(scrubbed, start),
            body_line,
            is_test: lexer::in_spans(body_line, spans)
                || lexer::in_spans(lexer::line_of(scrubbed, start), spans),
            calls,
        },
        body_close,
    ))
}

/// Splits a parameter list on top-level commas and parses each entry.
fn parse_params(text: &str, owner: Option<&str>) -> Vec<Param> {
    split_top_level(text)
        .into_iter()
        .filter_map(|p| parse_param(&p, owner))
        .collect()
}

fn parse_param(text: &str, owner: Option<&str>) -> Option<Param> {
    let t = text.trim();
    if t.is_empty() {
        return None;
    }
    // Receiver forms: `self`, `&self`, `&mut self`, `mut self`,
    // `self: Pin<..>`.
    let bare = t.trim_start_matches('&').trim_start();
    let bare = bare
        .strip_prefix("mut ")
        .map(str::trim_start)
        .unwrap_or(bare);
    let bare_head: String = bare.chars().take_while(|c| is_ident_char(*c)).collect();
    // A lifetime like `&'a self` leaves a leading quote; strip it.
    let bare2 = bare.trim_start_matches('\'');
    if bare_head == "self" || bare2.trim_start().starts_with("self") {
        return Some(Param {
            name: "self".to_owned(),
            ty: owner.unwrap_or("Self").to_owned(),
        });
    }
    // Split at the first top-level `:` that is not part of `::`.
    let chars: Vec<char> = t.chars().collect();
    let mut depth = 0i32;
    let mut colon = None;
    let mut k = 0;
    while k < chars.len() {
        match chars[k] {
            '(' | '[' | '{' | '<' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            '>' if k > 0 && chars[k - 1] != '-' => depth -= 1,
            ':' if depth == 0 => {
                if chars.get(k + 1) == Some(&':') {
                    k += 2;
                    continue;
                }
                colon = Some(k);
                break;
            }
            _ => {}
        }
        k += 1;
    }
    let colon = colon?;
    let pat: String = chars[..colon].iter().collect();
    let ty: String = chars[colon + 1..].iter().collect();
    let pat = pat.trim();
    let pat = pat.strip_prefix("mut ").map(str::trim).unwrap_or(pat);
    let name = if !pat.is_empty() && pat.chars().all(is_ident_char) && pat != "_" {
        pat.to_owned()
    } else {
        String::new() // pattern parameter: carries no taint
    };
    Some(Param {
        name,
        ty: ty.trim().to_owned(),
    })
}

/// Splits on commas at paren/bracket/brace/angle depth 0.
pub(crate) fn split_top_level(text: &str) -> Vec<String> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (k, &c) in chars.iter().enumerate() {
        match c {
            '(' | '[' | '{' | '<' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            '>' if k > 0 && chars[k - 1] != '-' => depth -= 1,
            ',' if depth <= 0 => {
                out.push(chars[start..k].iter().collect());
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < chars.len() {
        out.push(chars[start..].iter().collect());
    }
    out
}

/// Keywords that can directly precede a `(` without being a call.
const NON_CALL_WORDS: &[&str] = &[
    "if", "else", "while", "for", "in", "match", "return", "loop", "fn", "let", "move", "as",
    "impl", "dyn", "where", "mut", "ref", "break", "continue",
];

/// Iterator adaptors whose closure argument runs once per item of the
/// receiver collection. Anything not listed (e.g. `or_insert_with`,
/// `get_or_init`, `Option::map`) is treated as straight-line — a
/// documented under-approximation backstopped by the runtime op-count
/// cross-check (DESIGN.md §8.4).
const PER_ITEM_ADAPTORS: &[&str] = &[
    "map",
    "for_each",
    "flat_map",
    "filter_map",
    "filter",
    "fold",
    "retain",
    "scan",
    "inspect",
];

/// Spans of repeated execution inside a body: `for` bodies run per
/// item, `while`/`loop` bodies have no static trip count, and the
/// argument list of a known iterator adaptor runs per item.
fn repeat_spans(chars: &[char]) -> Vec<(usize, usize, LoopCtx)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        for (kw, ctx) in [
            ("for", LoopCtx::PerItem),
            ("while", LoopCtx::Unbounded),
            ("loop", LoopCtx::Unbounded),
        ] {
            if !starts_word_at(chars, i, kw) {
                continue;
            }
            let after = skip_ws(chars, i + kw.len());
            // `for<'a>` is a higher-ranked bound, not a loop.
            if kw == "for" && chars.get(after) == Some(&'<') {
                continue;
            }
            if let Some(open) = loop_body_open(chars, i + kw.len()) {
                if let Some(close) = match_brace(chars, open) {
                    out.push((open, close, ctx));
                }
            }
            break;
        }
        if chars[i] == '.' {
            let name_start = i + 1;
            let mut j = name_start;
            while j < chars.len() && is_ident_char(chars[j]) {
                j += 1;
            }
            if j > name_start {
                let name: String = chars[name_start..j].iter().collect();
                let open = skip_ws(chars, j);
                if PER_ITEM_ADAPTORS.contains(&name.as_str()) && chars.get(open) == Some(&'(') {
                    if let Some(close) = match_paren(chars, open) {
                        out.push((open, close, LoopCtx::PerItem));
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// The `{` opening a loop body: the first brace at paren/bracket depth
/// zero after the loop keyword (the header's `Some(x)`/`(a, b)` groups
/// are skipped by depth tracking).
fn loop_body_open(chars: &[char], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, &c) in chars.iter().enumerate().skip(from) {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            '{' if depth == 0 => return Some(j),
            ';' | '}' if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Classifies position `i` against the repeat spans: any unbounded
/// span wins; two or more nested per-item spans multiply into `n²`,
/// which the symbolic budgets cannot express, so they are unbounded
/// too.
fn ctx_at(spans: &[(usize, usize, LoopCtx)], i: usize) -> LoopCtx {
    let mut per_item = 0usize;
    for &(open, close, ctx) in spans {
        if open < i && i < close {
            match ctx {
                LoopCtx::Unbounded => return LoopCtx::Unbounded,
                LoopCtx::PerItem => per_item += 1,
                LoopCtx::Straight => {}
            }
        }
    }
    match per_item {
        0 => LoopCtx::Straight,
        1 => LoopCtx::PerItem,
        _ => LoopCtx::Unbounded,
    }
}

/// Extracts call expressions from a scrubbed body. `body_line` is the
/// 1-based file line of the body's first character.
fn collect_calls(body: &str, body_line: usize) -> Vec<Call> {
    let chars: Vec<char> = body.chars().collect();
    let spans = repeat_spans(&chars);
    let mut out = Vec::new();
    for i in 0..chars.len() {
        if chars[i] != '(' {
            continue;
        }
        // The token before the paren must be an identifier (calls) —
        // `!` (macros) and `>` (turbofish/comparison) are skipped.
        let Some(word_end) = prev_non_ws_idx(&chars, i) else {
            continue;
        };
        if !is_ident_char(chars[word_end]) {
            continue;
        }
        let mut word_start = word_end;
        while word_start > 0 && is_ident_char(chars[word_start - 1]) {
            word_start -= 1;
        }
        let word: String = chars[word_start..=word_end].iter().collect();
        if word.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        if NON_CALL_WORDS.contains(&word.as_str()) {
            continue;
        }
        // Walk the path backwards through `::` segments.
        let mut qualifier = None;
        let mut path_start = word_start;
        if path_start >= 2 && chars[path_start - 1] == ':' && chars[path_start - 2] == ':' {
            let mut q_end = path_start - 2;
            // Skip a turbofish-free qualifier: plain ident or `$meta`.
            let mut q_start = q_end;
            while q_start > 0 && (is_ident_char(chars[q_start - 1]) || chars[q_start - 1] == '$') {
                q_start -= 1;
            }
            if q_start < q_end {
                qualifier = Some(chars[q_start..q_end].iter().collect::<String>());
                // Walk further path segments back for path_start only.
                path_start = q_start;
                while path_start >= 2
                    && chars[path_start - 1] == ':'
                    && chars[path_start - 2] == ':'
                {
                    q_end = path_start - 2;
                    q_start = q_end;
                    while q_start > 0
                        && (is_ident_char(chars[q_start - 1]) || chars[q_start - 1] == '$')
                    {
                        q_start -= 1;
                    }
                    if q_start == q_end {
                        break;
                    }
                    path_start = q_start;
                }
            }
        }
        // Method call: a `.` directly before the (unqualified) name.
        let mut is_method = false;
        let mut receiver = None;
        if qualifier.is_none() {
            if let Some(prev) = prev_non_ws_idx(&chars, word_start) {
                if chars[prev] == '.' {
                    is_method = true;
                    receiver = receiver_text(&chars, prev);
                }
            }
        }
        let Some(close) = match_paren(&chars, i) else {
            continue;
        };
        let args_text: String = chars[i + 1..close].iter().collect();
        let args = split_top_level(&args_text)
            .into_iter()
            .map(|a| a.trim().to_owned())
            .filter(|a| !a.is_empty())
            .collect();
        out.push(Call {
            callee: word,
            qualifier,
            is_method,
            receiver,
            args,
            line: body_line + count_newlines(&chars[..i]),
            ctx: ctx_at(&spans, i),
        });
    }
    out
}

/// Reconstructs the receiver chain ending at the `.` at index `dot`:
/// identifiers, field accesses, `?`, and balanced `(..)`/`[..]` groups.
fn receiver_text(chars: &[char], dot: usize) -> Option<String> {
    let mut j = dot; // exclusive end
    while let Some(prev) = j.checked_sub(1) {
        let c = chars[prev];
        if is_ident_char(c) || c == '.' || c == '?' {
            j = prev;
            continue;
        }
        if c == ')' || c == ']' {
            // Skip the balanced group.
            let open_ch = if c == ')' { '(' } else { '[' };
            let mut depth = 0i32;
            let mut k = prev;
            loop {
                if chars[k] == c {
                    depth += 1;
                } else if chars[k] == open_ch {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k = k.checked_sub(1)?;
            }
            j = k;
            continue;
        }
        break;
    }
    (j < dot).then(|| chars[j..dot].iter().collect())
}

fn count_newlines(chars: &[char]) -> usize {
    chars.iter().filter(|&&c| c == '\n').count()
}

fn match_paren(chars: &[char], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, &c) in chars.iter().enumerate().skip(open) {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

fn match_brace(chars: &[char], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, &c) in chars.iter().enumerate().skip(open) {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

fn starts_word_at(chars: &[char], i: usize, word: &str) -> bool {
    let pat: Vec<char> = word.chars().collect();
    i + pat.len() <= chars.len()
        && chars[i..i + pat.len()] == pat[..]
        && (i == 0 || !is_ident_char(chars[i - 1]))
        && chars.get(i + pat.len()).is_none_or(|c| !is_ident_char(*c))
}

fn skip_ws(chars: &[char], mut i: usize) -> usize {
    while i < chars.len() && chars[i].is_whitespace() {
        i += 1;
    }
    i
}

fn prev_non_ws_idx(chars: &[char], before: usize) -> Option<usize> {
    (0..before).rev().find(|&j| !chars[j].is_whitespace())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn parses_free_and_method_fns() {
        let src = "fn free(a: u64, b: &Fr) -> Fr { a.wrap(b) }\n\
                   impl Foo {\n    pub fn method(&self, k: &Fr) -> Fr { self.mul(k) }\n}\n";
        let f = parse_file("x.rs", src);
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "free");
        assert_eq!(f.fns[0].owner, None);
        assert_eq!(f.fns[0].param_names(), vec!["a", "b"]);
        assert_eq!(f.fns[0].ret, "Fr");
        assert_eq!(f.fns[1].name, "method");
        assert_eq!(f.fns[1].owner.as_deref(), Some("Foo"));
        assert_eq!(f.fns[1].param_names(), vec!["self", "k"]);
        assert_eq!(f.fns[1].params[0].ty, "Foo");
    }

    #[test]
    fn trait_impl_owner_is_the_for_type() {
        let src = "impl CertificatelessScheme for McCls {\n    fn sign(&self) {}\n}\n";
        let f = parse_file("x.rs", src);
        assert_eq!(f.fns[0].owner.as_deref(), Some("McCls"));
    }

    #[test]
    fn generic_impl_owner_strips_generics_and_paths() {
        let src = "impl<C: Curve> ProjectivePoint<C> {\n    fn double(&self) -> Self { self }\n}\n\
                   impl core::ops::Add for $name {\n    fn add(self, rhs: $name) -> $name { rhs }\n}\n";
        let f = parse_file("x.rs", src);
        assert_eq!(f.fns[0].owner.as_deref(), Some("ProjectivePoint"));
        assert_eq!(f.fns[1].owner.as_deref(), Some("$name"));
    }

    #[test]
    fn calls_capture_path_method_and_args() {
        let src = "fn f(k: &Keys) {\n    let s = ops::mul_g1_ct(&partial.d, &x_inv);\n    \
                   let t = k.secret.invert_ct();\n    Self::helper(s, t);\n}\n";
        let f = parse_file("x.rs", src);
        let calls = &f.fns[0].calls;
        let mul = calls.iter().find(|c| c.callee == "mul_g1_ct").unwrap();
        assert_eq!(mul.qualifier.as_deref(), Some("ops"));
        assert_eq!(mul.args, vec!["&partial.d", "&x_inv"]);
        assert_eq!(mul.line, 2);
        let inv = calls.iter().find(|c| c.callee == "invert_ct").unwrap();
        assert!(inv.is_method);
        assert_eq!(inv.receiver.as_deref(), Some("k.secret"));
        let helper = calls.iter().find(|c| c.callee == "helper").unwrap();
        assert_eq!(helper.qualifier.as_deref(), Some("Self"));
    }

    #[test]
    fn chained_method_receiver_includes_call_groups() {
        let src = "fn f(r: &G2) { let x = r.to_affine().to_compressed(); }\n";
        let f = parse_file("x.rs", src);
        let c = f.fns[0]
            .calls
            .iter()
            .find(|c| c.callee == "to_compressed")
            .unwrap();
        assert_eq!(c.receiver.as_deref(), Some("r.to_affine()"));
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        let src = "fn f(x: u64) { if (x > 0) { assert!(x < 9); } for v in (0..x) {} }\n";
        let f = parse_file("x.rs", src);
        assert!(f.fns[0].calls.is_empty(), "{:?}", f.fns[0].calls);
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\n";
        let f = parse_file("x.rs", src);
        assert!(!f.fns[0].is_test);
        assert!(f.fns[1].is_test);
    }

    #[test]
    fn fn_with_generic_bound_parens() {
        let src = "fn apply<F: Fn(&u64) -> bool>(v: u64, f: F) -> bool { f(&v) }\n";
        let f = parse_file("x.rs", src);
        assert_eq!(f.fns[0].name, "apply");
        assert_eq!(f.fns[0].param_names(), vec!["v", "f"]);
        assert_eq!(f.fns[0].ret, "bool");
    }

    #[test]
    fn pattern_params_carry_no_name() {
        let src = "fn f((a, b): (u64, u64), c: u64) -> u64 { a + b + c }\n";
        let f = parse_file("x.rs", src);
        assert_eq!(f.fns[0].params.len(), 2);
        assert_eq!(f.fns[0].param_names(), vec!["c"]);
    }

    #[test]
    fn where_clause_is_not_part_of_return_type() {
        let src = "fn f<T>(x: T) -> Vec<T> where T: Clone { vec![x] }\n";
        let f = parse_file("x.rs", src);
        assert_eq!(f.fns[0].ret, "Vec<T>");
    }

    #[test]
    fn loop_context_classifies_call_sites() {
        let src = "fn f(v: &[u64]) {\n\
                   straight();\n\
                   for x in v { per_item(x); for y in v { nested(y); } }\n\
                   while more() { unbounded(); }\n\
                   loop { spin(); }\n\
                   }\n";
        let f = parse_file("x.rs", src);
        let ctx = |name: &str| {
            f.fns[0]
                .calls
                .iter()
                .find(|c| c.callee == name)
                .unwrap()
                .ctx
        };
        assert_eq!(ctx("straight"), LoopCtx::Straight);
        assert_eq!(ctx("per_item"), LoopCtx::PerItem);
        assert_eq!(ctx("nested"), LoopCtx::Unbounded, "n·n is not expressible");
        assert_eq!(ctx("unbounded"), LoopCtx::Unbounded);
        assert_eq!(ctx("spin"), LoopCtx::Unbounded);
        // The `while` condition itself sits outside the loop body.
        assert_eq!(ctx("more"), LoopCtx::Straight);
    }

    #[test]
    fn iterator_adaptor_closures_run_per_item() {
        let src = "fn f(v: &[u64]) -> Vec<u64> {\n\
                   let out = v.iter().map(|x| expensive(x)).collect();\n\
                   let once = cell.get_or_init(|| build());\n\
                   out\n\
                   }\n";
        let f = parse_file("x.rs", src);
        let exp = f.fns[0]
            .calls
            .iter()
            .find(|c| c.callee == "expensive")
            .unwrap();
        assert_eq!(exp.ctx, LoopCtx::PerItem);
        let build = f.fns[0].calls.iter().find(|c| c.callee == "build").unwrap();
        assert_eq!(build.ctx, LoopCtx::Straight, "unknown closures count once");
    }

    #[test]
    fn hrtb_for_is_not_a_loop() {
        let src = "fn f(v: u64) { let g: &dyn for<'a> Fn(&'a u64) = &|_| (); use_it(v); }\n";
        let f = parse_file("x.rs", src);
        let c = f.fns[0]
            .calls
            .iter()
            .find(|c| c.callee == "use_it")
            .unwrap();
        assert_eq!(c.ctx, LoopCtx::Straight);
    }

    #[test]
    fn rng_trait_object_param_parses() {
        let src = "fn gen(rng: &mut (impl RngCore + ?Sized)) -> Fr { Fr::random(rng) }\n";
        let f = parse_file("x.rs", src);
        assert_eq!(f.fns[0].param_names(), vec!["rng"]);
        let c = &f.fns[0].calls[0];
        assert_eq!(c.callee, "random");
        assert_eq!(c.qualifier.as_deref(), Some("Fr"));
    }
}
