//! The limb-overflow lint.
//!
//! The Montgomery arithmetic in `crates/pairing` lives or dies on carry
//! discipline: every multi-precision add, subtract, multiply, and shift
//! must route through an intrinsic that makes the carry explicit
//! (`adc`/`sbb`/`mac`, or the std `wrapping_*`/`overflowing_*`/
//! `carrying_*` family). A bare `+` on two `u64` limbs compiles fine,
//! passes every small-number test, and silently truncates on the first
//! full-width operand — release builds wrap without a panic, so not
//! even the panic lint can see it.
//!
//! This pass flags bare `+`/`-`/`*`/`<<` (and their compound-assign
//! forms) where an operand is a **limb value**:
//!
//! * a parameter whose type mentions `u64`/`u128` (including limb
//!   arrays like `&[u64; N]`);
//! * a binding whose initializer carries a `u64`/`u128` literal suffix
//!   or cast, or the destructured carry words of an intrinsic call;
//! * a binding or loop variable whose initializer mentions a known limb
//!   name, to a fixed point (so `let hi = t[j + 1];` inherits `t`'s
//!   limb-ness).
//!
//! Deliberate limits: `usize` index arithmetic (`i + 1`, `n - 1`) never
//! fires because neither operand resolves to a limb; a binding whose
//! initializer narrows the value away (`as i8`, `as usize`, …) drops
//! limb-ness; and the bodies of the approved intrinsics themselves
//! ([`INTRINSIC_FNS`]) are exempt — their internal `u128` widening *is*
//! the vetted implementation everything else must call.
//!
//! A reviewed site is suppressed with `// overflow-ok: <reason>`; a
//! bare marker is itself a finding, like every other suppression in
//! this gate.

use std::collections::HashSet;

use crate::lexer::{contains_word, is_ident_char};
use crate::parser::{self, FnItem};
use crate::{suppression_near, Finding, Suppression};

/// The suppression marker for this lint.
pub const ALLOW_MARKER: &str = "overflow-ok:";

/// Functions whose bodies *are* the approved carry intrinsics: their
/// internal widening arithmetic is the reviewed implementation, so the
/// lint does not police them against themselves.
pub const INTRINSIC_FNS: &[&str] = &["adc", "sbb", "mac"];

/// Cast targets that narrow a value out of limb range: a binding whose
/// initializer ends in one of these casts (and never mentions
/// `u64`/`u128`) is not a limb, whatever it was derived from.
const NARROWING_CASTS: &[&str] = &[
    "as i8", "as u8", "as i16", "as u16", "as i32", "as u32", "as usize", "as isize", "as bool",
    "as f32", "as f64",
];

/// Scans one file's source; `file` is the label used in findings.
pub fn scan(file: &str, src: &str) -> Vec<Finding> {
    let parsed = parser::parse_file(file, src);
    let raw: Vec<&str> = parsed.raw_lines.iter().map(String::as_str).collect();

    let mut findings = Vec::new();
    for item in &parsed.fns {
        if item.is_test || INTRINSIC_FNS.contains(&item.name.as_str()) {
            continue;
        }
        // Even with no tracked names, operands can be limb-valued
        // inline (`(a as u128) * (b as u128)`), so always scan.
        let limbs = limb_bindings(item);
        for (off, line) in item.body.lines().enumerate() {
            let lineno = item.body_line + off;
            for message in line_sites(line, &limbs) {
                match suppression_near(&raw, lineno, ALLOW_MARKER) {
                    Suppression::Justified => {}
                    Suppression::MissingReason => findings.push(Finding {
                        file: file.to_owned(),
                        line: lineno,
                        lint: "overflow",
                        message: format!("{message} (overflow-ok present but gives no reason)"),
                    }),
                    Suppression::None => findings.push(Finding {
                        file: file.to_owned(),
                        line: lineno,
                        lint: "overflow",
                        message,
                    }),
                }
            }
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

/// True when an initializer/iterand expression produces a limb value
/// under the current limb set.
fn is_limb_expr(text: &str, limbs: &HashSet<String>) -> bool {
    if text.contains("u64") || text.contains("u128") {
        return true;
    }
    // A narrowing cast launders the value out of limb range, and
    // length/count queries are `usize` whatever their receiver holds.
    if NARROWING_CASTS.iter().any(|c| text.contains(c))
        || text.contains(".len(")
        || text.contains(".count(")
    {
        return false;
    }
    limbs.iter().any(|l| contains_word(text, l))
}

/// Collects the limb-valued names of one function body: typed
/// parameters, then a fixed point over `let` bindings and `for`-loop
/// patterns whose right-hand side is limb-valued.
fn limb_bindings(item: &FnItem) -> HashSet<String> {
    let mut limbs: HashSet<String> = item
        .params
        .iter()
        .filter(|p| {
            !p.name.is_empty() && (contains_word(&p.ty, "u64") || contains_word(&p.ty, "u128"))
        })
        .map(|p| p.name.clone())
        .collect();

    loop {
        let mut changed = false;
        for line in item.body.lines() {
            let t = line.trim_start();
            if let Some(rest) = t.strip_prefix("let ") {
                let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
                let (names, after) = binding_names(rest);
                if !after.is_empty() && is_limb_expr(after, &limbs) {
                    for n in names {
                        changed |= limbs.insert(n);
                    }
                }
            } else if let Some(rest) = t.strip_prefix("for ") {
                if let Some(pos) = rest.find(" in ") {
                    let (pat, iter) = rest.split_at(pos);
                    if is_limb_expr(&iter[4..], &limbs) {
                        for n in pattern_idents(pat) {
                            changed |= limbs.insert(n);
                        }
                    }
                }
            }
        }
        if !changed {
            return limbs;
        }
    }
}

/// Splits a `let` statement tail into its bound names and the remaining
/// text (type annotation and initializer). Handles plain names and
/// one-level tuple patterns (`(v, carry)`); anything else binds nothing.
fn binding_names(rest: &str) -> (Vec<String>, &str) {
    if let Some(inner) = rest.strip_prefix('(') {
        let Some(close) = inner.find(')') else {
            return (Vec::new(), "");
        };
        (pattern_idents(&inner[..close]), &inner[close + 1..])
    } else {
        let name: String = rest.chars().take_while(|c| is_ident_char(*c)).collect();
        if name.is_empty() || name == "_" {
            return (Vec::new(), "");
        }
        let after = &rest[name.len()..];
        (vec![name], after)
    }
}

/// Plain identifier names inside a pattern fragment (`&`, `mut`, `_`,
/// and punctuation skipped).
fn pattern_idents(pat: &str) -> Vec<String> {
    pat.split(|c: char| !is_ident_char(c))
        .filter(|w| !w.is_empty() && *w != "_" && *w != "mut" && *w != "ref")
        .map(str::to_owned)
        .collect()
}

/// Bare-arithmetic findings on a single scrubbed line.
fn line_sites(line: &str, limbs: &HashSet<String>) -> Vec<String> {
    let chars: Vec<char> = line.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let (op, op_len) = match chars[i] {
            '+' => ("+", 1),
            '*' => ("*", 1),
            '-' if chars.get(i + 1) != Some(&'>') => ("-", 1),
            '<' if chars.get(i + 1) == Some(&'<') => ("<<", 2),
            _ => {
                i += 1;
                continue;
            }
        };
        // Binary only: the operator must follow a value expression.
        // Unary minus, dereferencing `*`, and generics fall out here.
        let prev = chars[..i]
            .iter()
            .rev()
            .copied()
            .find(|c| !c.is_whitespace());
        if !prev.is_some_and(|p| is_ident_char(p) || p == ')' || p == ']') {
            i += op_len;
            continue;
        }
        let left = left_operand(&chars, i);
        // Compound assigns (`+=`, `<<=`) share the operand rules.
        let mut rhs_start = i + op_len;
        if chars.get(rhs_start) == Some(&'=') {
            rhs_start += 1;
        }
        let right = right_operand(&chars, rhs_start);
        let hot = [&left, &right]
            .into_iter()
            .find(|o| operand_is_limb(o, limbs));
        if let Some(operand) = hot {
            out.push(format!(
                "bare `{op}` on limb value `{}` (use wrapping_/overflowing_/carrying_ \
                 or the adc/sbb/mac helpers)",
                operand.trim()
            ));
        }
        i += op_len;
    }
    out
}

/// True when an operand expression is limb-valued: it carries a
/// `u64`/`u128` suffix or cast, or mentions a known limb name. Length
/// and count queries are `usize` whatever their receiver holds.
fn operand_is_limb(text: &str, limbs: &HashSet<String>) -> bool {
    if text.is_empty() || text.contains(".len(") || text.contains(".count(") {
        return false;
    }
    text.contains("u64") || text.contains("u128") || limbs.iter().any(|l| contains_word(text, l))
}

/// The operand ending just before the operator at `op`: walks back over
/// identifier chains, field accesses, and balanced `(..)`/`[..]` groups.
fn left_operand(chars: &[char], op: usize) -> String {
    let mut j = op; // exclusive end
    while j > 0 && chars[j - 1].is_whitespace() {
        j -= 1;
    }
    let end = j;
    while let Some(p) = j.checked_sub(1) {
        let c = chars[p];
        if is_ident_char(c) || c == '.' || c == '$' {
            j = p;
            continue;
        }
        if c == ')' || c == ']' {
            let open = if c == ')' { '(' } else { '[' };
            let mut depth = 0i32;
            let mut k = p;
            loop {
                if chars[k] == c {
                    depth += 1;
                } else if chars[k] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                match k.checked_sub(1) {
                    Some(prev) => k = prev,
                    None => return chars[..end].iter().collect(),
                }
            }
            j = k;
            continue;
        }
        break;
    }
    chars[j..end].iter().collect()
}

/// The operand starting just after the operator: the mirror walk.
fn right_operand(chars: &[char], mut j: usize) -> String {
    while j < chars.len() && chars[j].is_whitespace() {
        j += 1;
    }
    if chars.get(j) == Some(&'&') {
        j += 1;
    }
    let start = j;
    while j < chars.len() {
        let c = chars[j];
        if is_ident_char(c) || c == '.' || c == '$' {
            j += 1;
            continue;
        }
        if c == '(' || c == '[' {
            let close = if c == '(' { ')' } else { ']' };
            let mut depth = 0i32;
            while j < chars.len() {
                if chars[j] == c {
                    depth += 1;
                } else if chars[j] == close {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            continue;
        }
        break;
    }
    chars[start..j].iter().collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn bare_add_on_limb_params_fires() {
        let src = "fn sum(a: u64, b: u64) -> u64 { a + b }\n";
        let findings = scan("x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("bare `+`"));
    }

    #[test]
    fn wrapping_and_intrinsic_calls_are_clean() {
        let src = "fn sum(a: u64, b: u64) -> u64 {\n    let (v, c) = adc(a, b, 0);\n    \
                   v.wrapping_add(c)\n}\n";
        assert!(scan("x.rs", src).is_empty());
    }

    #[test]
    fn limbness_propagates_through_bindings() {
        let src = "fn f(t: &[u64; 4]) -> u64 {\n    let hi = t[1];\n    hi << 62\n}\n";
        let findings = scan("x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("bare `<<`"));
    }

    #[test]
    fn index_arithmetic_is_not_flagged() {
        let src = "fn f(t: &[u64; 4]) -> u64 {\n    let mut acc = 0usize;\n    \
                   let n = acc + 1;\n    t[n - 1].wrapping_add(0)\n}\n";
        assert!(scan("x.rs", src).is_empty());
    }

    #[test]
    fn literal_shift_without_limb_operand_is_clean() {
        let src = "fn f(q: &mut [u64; 4], i: usize) {\n    q[i / 64] |= 1 << (i % 64);\n}\n";
        assert!(scan("x.rs", src).is_empty());
    }

    #[test]
    fn intrinsic_bodies_are_exempt() {
        let src = "fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {\n    \
                   let t = (a as u128) + (b as u128) + (carry as u128);\n    \
                   (t as u64, (t >> 64) as u64)\n}\n";
        assert!(scan("x.rs", src).is_empty());
    }

    #[test]
    fn narrowing_cast_drops_limbness() {
        let src = "fn f(limb: u64) -> i8 {\n    let nibble = (limb & 0xF) as i8;\n    \
                   nibble + 1\n}\n";
        assert!(scan("x.rs", src).is_empty());
    }

    #[test]
    fn widening_cast_in_operand_is_a_limb() {
        let src = "fn f(a: u32, b: u32) -> u128 { (a as u128) * (b as u128) }\n";
        let findings = scan("x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("bare `*`"));
    }

    #[test]
    fn justified_suppression_silences_and_bare_does_not() {
        let ok = "fn f(a: u64, b: u64) -> u64 {\n    // overflow-ok: caller guarantees a >= b\n    a - b\n}\n";
        assert!(scan("x.rs", ok).is_empty());
        let bare = "fn f(a: u64, b: u64) -> u64 {\n    // overflow-ok:\n    a - b\n}\n";
        let findings = scan("x.rs", bare);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("gives no reason"));
    }

    #[test]
    fn len_calls_and_arrows_are_not_operands() {
        let src = "fn f(limbs: &[u64]) -> usize {\n    let n = limbs.len() + 1;\n    n\n}\n\
                   fn g(x: u64) -> u64 { x.wrapping_add(1) }\n";
        assert!(scan("x.rs", src).is_empty());
    }

    #[test]
    fn for_pattern_over_limbs_is_tracked() {
        let src = "fn f(ls: &[u64; 4]) -> u64 {\n    let mut acc = 0u64;\n    \
                   for l in ls {\n        acc = l + acc;\n    }\n    acc\n}\n";
        let findings = scan("x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn test_functions_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(a: u64, b: u64) -> u64 { a + b }\n}\n";
        assert!(scan("x.rs", src).is_empty());
    }
}
