//! The untrusted-input validation-state pass.
//!
//! The classic break of certificateless schemes is Al-Riyami–Paterson
//! key replacement: an adversary ships a malformed or wrong-subgroup
//! "public key" and the verifier happily pairs with it. The paper's
//! security argument assumes every group element entering a pairing is
//! a valid point of the prime-order subgroup, so this pass proves the
//! code keeps that promise: no value decoded from untrusted bytes may
//! reach a pairing or group-arithmetic sink without passing a
//! curve/subgroup check.
//!
//! The model is a typestate-style fixpoint over the workspace call
//! graph:
//!
//! * **Sources** — *unchecked decoders*: functions that take raw bytes
//!   (a parameter whose type mentions `u8`) and return a group value
//!   ([`GROUP_TYPE_WORDS`]) without calling a sanitizer. Classification
//!   propagates: a group-returning function that calls an unchecked
//!   decoder and never sanitizes is itself an unchecked decoder. The
//!   checked `Option`-returning `from_compressed` path calls
//!   `is_torsion_free`/`is_on_curve` internally, so it — and everything
//!   built on it, like `Signature::from_bytes` — classifies as checked.
//! * **Sanitizers** — a call to [`SANITIZERS`] on a binding clears it;
//!   a reviewed `// validated: <reason>` marker declassifies a binding
//!   (or, placed on a decoder's declaration, the whole decoder — the
//!   escape hatch for constructions that are valid *by construction*,
//!   like cofactor-cleared hash-to-curve outputs). A bare marker is
//!   itself a finding.
//! * **Sinks** — pairing frontends, `multi_miller_loop`, and the
//!   mixed-addition/scalar-multiplication entry points
//!   ([`VALIDATE_SINKS`]). An unvalidated value in a sink argument or
//!   receiver is reported **at the call site** with the concrete call
//!   chain that carried it there.
//!
//! Known over-approximations (DESIGN.md §8.2): decoder classification
//! and sink matching are name-based like the rest of the call graph;
//! sanitizer clearing is flow-insensitive within a body (a check
//! anywhere in the function clears the binding, even on a branch); and
//! a checked wrapper's *result* is trusted as a unit — internal flows
//! of decoder bodies are not re-derived.

use std::collections::{BTreeSet, HashSet};

use crate::callgraph::CallGraph;
use crate::ct_lint::{self, contains_call};
use crate::lexer::contains_word;
use crate::parser::{FnItem, ParsedFile};
use crate::{suppression_near, Finding, Suppression};

/// The declassification marker: a reviewed statement that a decoded
/// value is valid without a runtime check.
pub const VALIDATED_MARKER: &str = "validated:";

/// Type names that identify a group-element-carrying return value.
pub const GROUP_TYPE_WORDS: &[&str] = &[
    "G1Affine",
    "G2Affine",
    "G1Projective",
    "G2Projective",
    "AffinePoint",
    "ProjectivePoint",
    "Signature",
    "Gt",
    "G2Prepared",
];

/// Checked-constructor calls that establish curve/subgroup membership.
pub const SANITIZERS: &[&str] = &["is_on_curve", "is_torsion_free"];

/// Pairing frontends and group-arithmetic entry points that must never
/// see an unvalidated element. Matching is name-based so sinks fire
/// even when the callee resolves outside the parsed scope.
pub const VALIDATE_SINKS: &[&str] = &[
    "pair",
    "pair_prepared",
    "pairing",
    "pairing_product",
    "pairing_product_prepared",
    "miller_loop",
    "multi_miller_loop",
    "mul_scalar",
    "mul_g1",
    "mul_g2",
    "add_mixed",
    "add_affine",
];

/// Runs the validation-state pass over already-parsed files.
pub fn analyze(files: &[ParsedFile]) -> Vec<Finding> {
    let graph = CallGraph::build(files);
    let (unchecked, mut findings) = classify_decoders(files, &graph);
    let state = fixpoint(files, &graph, &unchecked);
    findings.extend(report(files, &graph, &unchecked, &state));
    findings.sort();
    findings.dedup();
    findings
}

/// True when the function's return type carries a group element
/// (directly, or via `Self` on a group-typed impl block).
fn returns_group(item: &FnItem) -> bool {
    GROUP_TYPE_WORDS.iter().any(|w| contains_word(&item.ret, w))
        || (contains_word(&item.ret, "Self")
            && item
                .owner
                .as_deref()
                .is_some_and(|o| GROUP_TYPE_WORDS.iter().any(|w| contains_word(o, w))))
}

/// True when the function accepts raw bytes (the untrusted boundary).
fn takes_bytes(item: &FnItem) -> bool {
    item.params.iter().any(|p| contains_word(&p.ty, "u8"))
}

/// True when the body calls a checked constructor.
fn calls_sanitizer(item: &FnItem) -> bool {
    item.calls
        .iter()
        .any(|c| SANITIZERS.contains(&c.callee.as_str()))
}

/// Declaration-level marker lookup: a marker counts above the `fn`
/// keyword or above the body's opening `{` (they differ on multi-line
/// signatures). `Justified` anywhere wins; otherwise a bare marker
/// anywhere is reported.
fn decl_suppression(item: &FnItem, raw: &[&str]) -> Suppression {
    let at_decl = suppression_near(raw, item.decl_line, VALIDATED_MARKER);
    let at_body = suppression_near(raw, item.body_line, VALIDATED_MARKER);
    if at_decl == Suppression::Justified || at_body == Suppression::Justified {
        Suppression::Justified
    } else if at_decl == Suppression::MissingReason || at_body == Suppression::MissingReason {
        Suppression::MissingReason
    } else {
        Suppression::None
    }
}

/// Classifies every group-returning function as checked or unchecked,
/// to a fixed point; returns the unchecked decoder names plus findings
/// for bare declaration-level markers.
fn classify_decoders(files: &[ParsedFile], graph: &CallGraph) -> (HashSet<String>, Vec<Finding>) {
    // First fixed point: the *checked* decoders. A group-returning
    // function is checked when it calls a sanitizer itself or delegates
    // to an already-checked decoder — `Signature::from_bytes` earns its
    // status from `from_compressed`'s internal subgroup test.
    let mut checked: HashSet<String> = HashSet::new();
    loop {
        let mut changed = false;
        for ni in 0..graph.nodes.len() {
            let item = graph.item(files, ni);
            if checked.contains(&item.name) || !returns_group(item) {
                continue;
            }
            if calls_sanitizer(item) || item.calls.iter().any(|c| checked.contains(&c.callee)) {
                changed |= checked.insert(item.name.clone());
            }
        }
        if !changed {
            break;
        }
    }

    // Second fixed point: the *unchecked* decoders — group-returning,
    // not checked, not declassified by a reviewed marker, and either
    // accepting raw bytes or propagating another unchecked decoder.
    let mut unchecked: HashSet<String> = HashSet::new();
    let mut findings = Vec::new();
    loop {
        let mut changed = false;
        for ni in 0..graph.nodes.len() {
            let item = graph.item(files, ni);
            if unchecked.contains(&item.name)
                || !returns_group(item)
                || checked.contains(&item.name)
            {
                continue;
            }
            let file = graph.file(files, ni);
            let raw: Vec<&str> = file.raw_lines.iter().map(String::as_str).collect();
            if decl_suppression(item, &raw) == Suppression::Justified {
                continue;
            }
            let via_call = item.calls.iter().any(|c| unchecked.contains(&c.callee));
            if takes_bytes(item) || via_call {
                unchecked.insert(item.name.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // A bare declaration-level marker never declassifies and is itself
    // a finding — same contract as every other suppression in the gate.
    for ni in 0..graph.nodes.len() {
        let item = graph.item(files, ni);
        if !returns_group(item) {
            continue;
        }
        let file = graph.file(files, ni);
        let raw: Vec<&str> = file.raw_lines.iter().map(String::as_str).collect();
        if decl_suppression(item, &raw) == Suppression::MissingReason {
            findings.push(Finding {
                file: file.path.clone(),
                line: item.body_line,
                lint: "validate",
                message: format!(
                    "validated marker on `{}` present but gives no reason",
                    item.name
                ),
            });
        }
    }
    (unchecked, findings)
}

/// Converged interprocedural facts.
struct ValidateState {
    /// Per node: parameter names holding unvalidated group values.
    unvalidated_params: Vec<BTreeSet<String>>,
    /// Provenance: the caller that first handed node `ni` an
    /// unvalidated value, for chain rendering.
    parent: Vec<Option<usize>>,
}

/// One body's intraprocedural result.
struct BodyFacts {
    /// Names holding unvalidated values after the fixed point.
    names: Vec<String>,
    /// Lines of bare `validated:` markers (findings).
    bare_marker_lines: Vec<usize>,
}

/// Intraprocedural value tracking: seeds (unvalidated parameters) plus
/// bindings fed by unchecked decoders, propagated through `let`s and
/// assignments; cleared by sanitizer calls and justified markers.
fn body_facts(
    item: &FnItem,
    raw: &[&str],
    seeds: &BTreeSet<String>,
    unchecked: &HashSet<String>,
) -> BodyFacts {
    let bindings = ct_lint::bindings_of(&item.body);

    let mut declassified: HashSet<String> = HashSet::new();
    let mut bare_marker_lines = Vec::new();
    for (name, _, off) in &bindings {
        match suppression_near(raw, item.body_line + off, VALIDATED_MARKER) {
            Suppression::Justified => {
                declassified.insert(name.clone());
            }
            Suppression::MissingReason => bare_marker_lines.push(item.body_line + off),
            Suppression::None => {}
        }
    }
    bare_marker_lines.sort_unstable();
    bare_marker_lines.dedup();

    // Flow-insensitive sanitizer clearing: a membership check anywhere
    // in the body validates the binding (word-boundary matched, so a
    // check on `pk` never clears a binding named `k`).
    let sanitized = |name: &str| {
        SANITIZERS.iter().any(|s| {
            let pat = format!("{name}.{s}");
            item.body.match_indices(&pat).any(|(i, _)| {
                !item.body[..i]
                    .chars()
                    .next_back()
                    .is_some_and(crate::lexer::is_ident_char)
            })
        })
    };

    let mut names: Vec<String> = seeds
        .iter()
        .filter(|n| !declassified.contains(*n) && !sanitized(n))
        .cloned()
        .collect();
    loop {
        let mut changed = false;
        for (name, rhs, _) in &bindings {
            if names.contains(name) || declassified.contains(name) || sanitized(name) {
                continue;
            }
            if expr_unvalidated(rhs, &names, unchecked) {
                names.push(name.clone());
                changed = true;
            }
        }
        if !changed {
            return BodyFacts {
                names,
                bare_marker_lines,
            };
        }
    }
}

/// True when an expression carries an unvalidated value: it mentions an
/// unvalidated name or calls an unchecked decoder.
fn expr_unvalidated(expr: &str, names: &[String], unchecked: &HashSet<String>) -> bool {
    names.iter().any(|n| contains_word(expr, n)) || unchecked.iter().any(|d| contains_call(expr, d))
}

/// Propagates unvalidated values across call edges to a fixed point,
/// recording one provenance parent per node for chain rendering.
fn fixpoint(files: &[ParsedFile], graph: &CallGraph, unchecked: &HashSet<String>) -> ValidateState {
    let mut unvalidated_params: Vec<BTreeSet<String>> = vec![BTreeSet::new(); graph.nodes.len()];
    let mut parent: Vec<Option<usize>> = vec![None; graph.nodes.len()];

    loop {
        let mut changed = false;
        for ni in 0..graph.nodes.len() {
            let item = graph.item(files, ni);
            let file = graph.file(files, ni);
            let raw: Vec<&str> = file.raw_lines.iter().map(String::as_str).collect();
            let facts = body_facts(item, &raw, &unvalidated_params[ni], unchecked);

            for edge in &graph.edges[ni] {
                let call = &item.calls[edge.call];
                let callee = graph.item(files, edge.callee);
                if VALIDATE_SINKS.contains(&callee.name.as_str()) {
                    // Reported at the call site by `report`; the sink's
                    // body is not re-analysed.
                    continue;
                }
                let callee_has_self = callee.params.first().is_some_and(|p| p.name == "self");
                if call.is_method && callee_has_self {
                    if let Some(recv) = &call.receiver {
                        if expr_unvalidated(recv, &facts.names, unchecked)
                            && unvalidated_params[edge.callee].insert("self".to_owned())
                        {
                            parent[edge.callee].get_or_insert(ni);
                            changed = true;
                        }
                    }
                }
                let offset = usize::from(call.is_method && callee_has_self);
                for (k, arg) in call.args.iter().enumerate() {
                    if !expr_unvalidated(arg, &facts.names, unchecked) {
                        continue;
                    }
                    let Some(p) = callee.params.get(k + offset) else {
                        continue;
                    };
                    if !p.name.is_empty() && unvalidated_params[edge.callee].insert(p.name.clone())
                    {
                        parent[edge.callee].get_or_insert(ni);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return ValidateState {
                unvalidated_params,
                parent,
            };
        }
    }
}

/// Renders the provenance chain from the first source-holding function
/// down to node `ni` (cycle-guarded; parents are set-once).
fn chain_text(
    files: &[ParsedFile],
    graph: &CallGraph,
    parent: &[Option<usize>],
    ni: usize,
) -> String {
    let mut names = vec![graph.item(files, ni).name.clone()];
    let mut seen = HashSet::from([ni]);
    let mut cur = ni;
    while let Some(p) = parent[cur] {
        if !seen.insert(p) {
            break;
        }
        names.push(graph.item(files, p).name.clone());
        cur = p;
    }
    names.reverse();
    names.join(" -> ")
}

/// Emits sink findings: an unvalidated argument or receiver at a sink
/// call site, annotated with the concrete call chain. Bindings' bare
/// markers ride along.
fn report(
    files: &[ParsedFile],
    graph: &CallGraph,
    unchecked: &HashSet<String>,
    state: &ValidateState,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for ni in 0..graph.nodes.len() {
        let item = graph.item(files, ni);
        let file = graph.file(files, ni);
        let raw: Vec<&str> = file.raw_lines.iter().map(String::as_str).collect();
        let facts = body_facts(item, &raw, &state.unvalidated_params[ni], unchecked);

        for line in &facts.bare_marker_lines {
            findings.push(Finding {
                file: file.path.clone(),
                line: *line,
                lint: "validate",
                message: "validated marker present but gives no reason".to_owned(),
            });
        }

        for call in &item.calls {
            if !VALIDATE_SINKS.contains(&call.callee.as_str()) {
                continue;
            }
            let hot = call
                .args
                .iter()
                .chain(call.receiver.as_ref())
                .any(|a| expr_unvalidated(a, &facts.names, unchecked));
            if !hot {
                continue;
            }
            let message = format!(
                "unvalidated group element reaches sink `{}` via {} -> {} \
                 (decode through the checked constructors or sanitize with \
                 is_on_curve/is_torsion_free)",
                call.callee,
                chain_text(files, graph, &state.parent, ni),
                call.callee
            );
            match suppression_near(&raw, call.line, VALIDATED_MARKER) {
                Suppression::Justified => {}
                Suppression::MissingReason => findings.push(Finding {
                    file: file.path.clone(),
                    line: call.line,
                    lint: "validate",
                    message: format!("{message} (validated marker gives no reason)"),
                }),
                Suppression::None => findings.push(Finding {
                    file: file.path.clone(),
                    line: call.line,
                    lint: "validate",
                    message,
                }),
            }
        }
    }
    findings
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use crate::parser::parse_files;

    fn run(sources: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<(String, String)> = sources
            .iter()
            .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
            .collect();
        analyze(&parse_files(&owned))
    }

    const UNCHECKED_DECODER: &str = "fn decode_raw(bytes: &[u8; 96]) -> G2Affine {\n    \
         let x = fp2_from(bytes);\n    G2Affine::raw(x)\n}\n";

    #[test]
    fn unvalidated_decode_reaching_pair_is_reported_with_chain() {
        let findings = run(&[(
            "a.rs",
            &format!(
                "{UNCHECKED_DECODER}\
                 fn verify(msg: &[u8], key: &[u8; 96]) -> bool {{\n    \
                 let pk = decode_raw(key);\n    \
                 let lhs = pair(&point(msg), &pk);\n    lhs == rhs()\n}}\n"
            ),
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("sink `pair`"));
        assert!(findings[0].message.contains("via verify -> pair"));
    }

    #[test]
    fn sanitizer_call_clears_the_value() {
        let findings = run(&[(
            "a.rs",
            &format!(
                "{UNCHECKED_DECODER}\
                 fn verify(msg: &[u8], key: &[u8; 96]) -> bool {{\n    \
                 let pk = decode_raw(key);\n    \
                 if !pk.is_torsion_free() {{ return false; }}\n    \
                 pair(&point(msg), &pk) == rhs()\n}}\n"
            ),
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn checked_decoder_is_not_a_source() {
        let findings = run(&[(
            "a.rs",
            "fn from_compressed(bytes: &[u8; 96]) -> G2Affine {\n    \
             let p = build(bytes);\n    assert_ok(p.is_torsion_free());\n    p\n}\n\
             fn verify(msg: &[u8], key: &[u8; 96]) -> bool {\n    \
             let pk = from_compressed(key);\n    pair(&point(msg), &pk) == rhs()\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unchecked_classification_propagates_through_wrappers() {
        let findings = run(&[(
            "a.rs",
            &format!(
                "{UNCHECKED_DECODER}\
                 fn parse_key(bytes: &[u8; 96]) -> G2Affine {{\n    decode_raw(bytes)\n}}\n\
                 fn verify(msg: &[u8], key: &[u8; 96]) -> bool {{\n    \
                 let pk = parse_key(key);\n    pair(&point(msg), &pk) == rhs()\n}}\n"
            ),
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("sink `pair`"));
    }

    #[test]
    fn flow_crosses_call_edges_with_chain() {
        let findings = run(&[(
            "a.rs",
            &format!(
                "{UNCHECKED_DECODER}\
                 fn verify(msg: &[u8], key: &[u8; 96]) -> bool {{\n    \
                 let pk = decode_raw(key);\n    check(msg, &pk)\n}}\n\
                 fn check(msg: &[u8], pk: &G2Affine) -> bool {{\n    \
                 pair(&point(msg), pk) == rhs()\n}}\n"
            ),
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("via verify -> check -> pair"),
            "{findings:?}"
        );
    }

    #[test]
    fn justified_marker_declassifies_a_binding() {
        let findings = run(&[(
            "a.rs",
            &format!(
                "{UNCHECKED_DECODER}\
                 fn verify(msg: &[u8], key: &[u8; 96]) -> bool {{\n    \
                 // validated: subgroup membership checked by the KGC at registration\n    \
                 let pk = decode_raw(key);\n    pair(&point(msg), &pk) == rhs()\n}}\n"
            ),
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn bare_marker_is_reported_and_does_not_declassify() {
        let findings = run(&[(
            "a.rs",
            &format!(
                "{UNCHECKED_DECODER}\
                 fn verify(msg: &[u8], key: &[u8; 96]) -> bool {{\n    \
                 // validated:\n    \
                 let pk = decode_raw(key);\n    pair(&point(msg), &pk) == rhs()\n}}\n"
            ),
        )]);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("gives no reason")),
            "{findings:?}"
        );
        assert!(
            findings.iter().any(|f| f.message.contains("sink `pair`")),
            "{findings:?}"
        );
    }

    #[test]
    fn declaration_marker_declassifies_a_whole_decoder() {
        let findings = run(&[(
            "a.rs",
            "// validated: output is cofactor-cleared, torsion-free by construction\n\
             fn hash_point(msg: &[u8]) -> G1Projective {\n    clear_cofactor(map(msg))\n}\n\
             fn verify(msg: &[u8]) -> bool {\n    \
             let h = hash_point(msg);\n    pair(&h, &gen2()) == rhs()\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn raw_prepared_decoder_is_a_source() {
        // A G2Prepared built straight from wire bytes — line
        // coefficients trusted from the network — is an unchecked
        // decoder, and feeding it to the Miller loop is a sink hit.
        let findings = run(&[(
            "a.rs",
            "fn prepared_raw(bytes: &[u8]) -> G2Prepared {\n    \
             G2Prepared::raw_steps(bytes)\n}\n\
             fn verify(msg: &[u8], wire: &[u8]) -> bool {\n    \
             let prep = prepared_raw(wire);\n    \
             multi_miller_loop(&[(&point(msg), &prep)]).final_exponentiation().is_identity()\n}\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("sink `multi_miller_loop`"));
    }

    #[test]
    fn prepared_from_bytes_via_checked_point_decoder_is_checked() {
        // The real wire format: decode the source point through the
        // checked constructor, then re-derive the lines. The delegation
        // makes `from_bytes` itself a checked decoder.
        let findings = run(&[(
            "a.rs",
            "fn from_compressed(bytes: &[u8; 96]) -> G2Affine {\n    \
             let p = build(bytes);\n    assert_ok(p.is_torsion_free());\n    p\n}\n\
             fn from_bytes(bytes: &[u8]) -> G2Prepared {\n    \
             let source = from_compressed(fixed(bytes));\n    \
             G2Prepared::from_affine(&source)\n}\n\
             fn verify(msg: &[u8], wire: &[u8]) -> bool {\n    \
             let prep = from_bytes(wire);\n    \
             multi_miller_loop(&[(&point(msg), &prep)]).final_exponentiation().is_identity()\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn non_group_byte_functions_are_not_sources() {
        let findings = run(&[(
            "a.rs",
            "fn digest(bytes: &[u8]) -> [u8; 32] {\n    sha(bytes)\n}\n\
             fn verify(msg: &[u8]) -> bool {\n    \
             let d = digest(msg);\n    pair(&gen1(), &gen2()) == rhs()\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
