//! The panic-freedom lint.
//!
//! A signing node dropped into a mesh cannot afford to abort: a panic in
//! the crypto path is a remote denial-of-service at best. This lint
//! keeps the non-test code of the cryptographic crates free of:
//!
//! * `.unwrap()` / `.expect(..)` calls;
//! * `panic!`, `unreachable!`, `todo!`, `unimplemented!` macros;
//! * slice/range indexing (`x[a..b]`) and computed indices
//!   (`x[i + 1]`, `x[f(i)]`) — the panicking subset of `Index`. A plain
//!   single-token index (`x[i]`, `x[0]`) is tolerated: the dominant
//!   idiom here is fixed-bound limb loops where the bound is the array
//!   length by construction, and flagging every one of those would bury
//!   the signal. The full-range re-borrow `x[..]` cannot panic and is
//!   tolerated too.
//!
//! A justified site is suppressed with a trailing or immediately
//! preceding comment `// lint:allow(panic) <reason>`; the reason is
//! mandatory, and a bare marker is itself reported.

use crate::lexer::{self, is_ident_char};
use crate::{suppression_near, Finding, Suppression};

/// The suppression marker for this lint.
pub const ALLOW_MARKER: &str = "lint:allow(panic)";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Every potential panic site in already-scrubbed text, as
/// `(1-based line, message)` pairs with no suppression filtering: the
/// intraprocedural backend shared by [`scan`] and [`crate::reach`].
pub fn panic_sites(scrubbed: &str) -> Vec<(usize, String)> {
    let chars: Vec<char> = scrubbed.chars().collect();
    let mut raw = Vec::new();
    collect_calls(&chars, scrubbed, &mut raw);
    collect_indexing(&chars, scrubbed, &mut raw);
    raw
}

/// Scans one file's source; `file` is the label used in findings.
pub fn scan(file: &str, src: &str) -> Vec<Finding> {
    let scrubbed = lexer::scrub(src);
    let spans = lexer::test_spans(&scrubbed);
    let raw_lines: Vec<&str> = src.lines().collect();
    let raw = panic_sites(&scrubbed);

    let mut findings = Vec::new();
    for (line, message) in raw {
        if lexer::in_spans(line, &spans) {
            continue;
        }
        match suppression_near(&raw_lines, line, ALLOW_MARKER) {
            Suppression::Justified => {}
            Suppression::MissingReason => findings.push(Finding {
                file: file.to_owned(),
                line,
                lint: "panic",
                message: format!("{message} (lint:allow(panic) present but gives no reason)"),
            }),
            Suppression::None => findings.push(Finding {
                file: file.to_owned(),
                line,
                lint: "panic",
                message,
            }),
        }
    }
    findings
}

/// Finds panic-family macros and `unwrap`/`expect` calls.
fn collect_calls(chars: &[char], scrubbed: &str, out: &mut Vec<(usize, String)>) {
    let mut i = 0;
    while i < chars.len() {
        if !is_ident_char(chars[i]) || (i > 0 && is_ident_char(chars[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        while i < chars.len() && is_ident_char(chars[i]) {
            i += 1;
        }
        let word: String = chars[start..i].iter().collect();
        let next = next_non_ws(chars, i);
        if PANIC_MACROS.contains(&word.as_str()) && next == Some('!') {
            out.push((
                lexer::line_of(scrubbed, start),
                format!("`{word}!` in non-test code"),
            ));
        } else if PANIC_METHODS.contains(&word.as_str())
            && next == Some('(')
            && prev_non_ws(chars, start) == Some('.')
        {
            out.push((
                lexer::line_of(scrubbed, start),
                format!("`.{word}()` in non-test code"),
            ));
        }
    }
}

/// Finds indexing expressions whose index can panic non-trivially.
fn collect_indexing(chars: &[char], scrubbed: &str, out: &mut Vec<(usize, String)>) {
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        // Indexing only when the bracket follows a value expression;
        // `#[attr]`, `&[T]`, `: [T; N]`, `= [...]` are not. A keyword
        // before the bracket (`for [u64; N]`, `let [a, b] = ..`) means
        // a type or pattern position, not indexing.
        let Some(prev) = prev_non_ws(chars, i) else {
            continue;
        };
        if !(is_ident_char(prev) || prev == ')' || prev == ']') {
            continue;
        }
        if prev_word(chars, i).is_some_and(|w| KEYWORDS_BEFORE_BRACKET.contains(&w.as_str())) {
            continue;
        }
        let Some(close) = matching_bracket(chars, i) else {
            continue;
        };
        let content: String = chars[i + 1..close].iter().collect();
        // A top-level `,` or `;` inside the brackets means an array
        // literal/type/repeat expression — index expressions have
        // neither.
        if has_top_level_separator(&content) {
            continue;
        }
        let line = lexer::line_of(scrubbed, i);
        // `x[..]` re-borrows the whole slice and cannot panic.
        if content.trim() == ".." {
            continue;
        }
        if content.contains("..") {
            out.push((
                line,
                format!("range indexing `[{}]` can panic", content.trim()),
            ));
        } else if !is_simple_index(content.trim()) {
            out.push((
                line,
                format!("computed index `[{}]` can panic", content.trim()),
            ));
        }
    }
}

/// Keywords that put the following bracket group in type or pattern
/// position (`impl X for [u64; N]`, `let [a, b] = ..`).
const KEYWORDS_BEFORE_BRACKET: &[&str] = &[
    "let", "for", "in", "if", "else", "match", "return", "mut", "ref", "as", "dyn", "impl",
];

/// A single identifier, integer literal, or macro metavariable
/// (`$limbs`): the tolerated index forms.
fn is_simple_index(s: &str) -> bool {
    let body = s.strip_prefix('$').unwrap_or(s);
    !body.is_empty() && body.chars().all(is_ident_char)
}

/// True when `content` has a `,` or `;` outside any nested grouping:
/// the signature of an array literal, array type, or repeat expression.
fn has_top_level_separator(content: &str) -> bool {
    let mut depth = 0i32;
    for c in content.chars() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            ',' | ';' if depth == 0 => return true,
            _ => {}
        }
    }
    false
}

/// The identifier word ending just before position `i`, if any.
fn prev_word(chars: &[char], i: usize) -> Option<String> {
    let mut end = i;
    while end > 0 && chars[end - 1].is_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident_char(chars[start - 1]) {
        start -= 1;
    }
    (start < end).then(|| chars[start..end].iter().collect())
}

fn matching_bracket(chars: &[char], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, &c) in chars.iter().enumerate().skip(open) {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

fn next_non_ws(chars: &[char], from: usize) -> Option<char> {
    chars[from..].iter().copied().find(|c| !c.is_whitespace())
}

fn prev_non_ws(chars: &[char], before: usize) -> Option<char> {
    chars[..before]
        .iter()
        .rev()
        .copied()
        .find(|c| !c.is_whitespace())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    const FIXTURE: &str = include_str!("../fixtures/panic_cases.rs");

    fn lines_of(findings: &[Finding]) -> Vec<usize> {
        findings.iter().map(|f| f.line).collect()
    }

    #[test]
    fn fixture_violations_are_found() {
        let findings = scan("fixtures/panic_cases.rs", FIXTURE);
        // One finding per seeded violation; see the fixture's comments.
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("`.unwrap()`")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`.expect()`")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`panic!`")), "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("`unreachable!`")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("range indexing")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("computed index")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("gives no reason")),
            "bare allow marker must be reported: {msgs:?}"
        );
    }

    #[test]
    fn fixture_non_violations_are_not_flagged() {
        let findings = scan("fixtures/panic_cases.rs", FIXTURE);
        for f in &findings {
            let line = FIXTURE.lines().nth(f.line - 1).unwrap_or("");
            assert!(
                !line.contains("CLEAN"),
                "line {} marked CLEAN was flagged: {}",
                f.line,
                f.message
            );
        }
    }

    #[test]
    fn justified_allow_suppresses() {
        let src = "fn f(v: &[u8]) -> u8 {\n    // lint:allow(panic) length checked by caller contract\n    v[compute()]\n}\n";
        assert!(scan("x.rs", src).is_empty());
    }

    #[test]
    fn bare_allow_does_not_suppress() {
        let src = "fn f(v: &[u8]) -> u8 {\n    // lint:allow(panic)\n    v[compute()]\n}\n";
        let findings = scan("x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("gives no reason"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); panic!(); }\n}\n";
        assert!(scan("x.rs", src).is_empty());
    }

    #[test]
    fn doc_comments_and_strings_do_not_trip() {
        let src =
            "/// Call `.unwrap()` and panic! freely in docs.\nfn f() { let s = \"panic!\"; }\n";
        assert!(scan("x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f() { x.unwrap_or(1); x.unwrap_or_default(); }\n";
        assert!(scan("x.rs", src).is_empty());
    }

    #[test]
    fn array_types_literals_and_patterns_are_not_indexing() {
        // `for [u64; N]` (trait impl), repeat types after identifiers,
        // array literals, and destructuring patterns must not fire.
        let src = "impl Foo for [u64; N] {}\n\
                   fn f() -> [Vec<u64>; 4] { g() }\n\
                   fn g(a: &Fp2) { let xs = h()[0..0]; }\n\
                   fn h() { let [mut a, mut b] = state; }\n\
                   fn i() { let roots = [a.c0.add(&x).mul(&y), a.c0.sub(&x).mul(&y)]; }\n\
                   fn j(c6: &Fp6) { for c in [&c6.c0, &c6.c1, &c6.c2] {} }\n";
        let findings = scan("x.rs", src);
        // Only the genuine range indexing on line 3 remains.
        assert_eq!(lines_of(&findings), vec![3], "{findings:?}");
    }

    #[test]
    fn full_range_reborrow_is_tolerated() {
        let src = "fn f(v: &[u8]) { g(&v[..]); h(&v[1..]); }\n";
        let findings = scan("x.rs", src);
        // Only `[1..]` can actually panic.
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("[1..]"));
    }

    #[test]
    fn index_with_nested_call_commas_still_fires() {
        // A comma nested inside parens is part of the index expression.
        let src = "fn f() { let y = v[idx(a, b)]; }\n";
        assert_eq!(scan("x.rs", src).len(), 1);
    }

    #[test]
    fn single_token_index_is_tolerated() {
        let src = "fn f() { let y = a[i]; let z = b[0]; let w = t[j]; }\n";
        assert!(scan("x.rs", src).is_empty());
        assert!(lines_of(&scan("x.rs", "fn f() { a[i + 1]; }\n")) == vec![1]);
    }
}
