//! Interprocedural asymptotic-complexity certification for the
//! simulation hot path (`crates/sim` + `crates/aodv`).
//!
//! Every function gets a symbolic big-O class — a product of bounded
//! factors `nodes` (network size), `neighbors` (grid-bucket candidates,
//! capped by the density contract), and `log` (calendar/day scans) —
//! inferred from its loop nests and composed bottom-up through the call
//! graph (callees first; cycles saturate to "unbounded" exactly like
//! the operation-count analysis in [`crate::opcount`]).
//!
//! Loop iteration counts are classified from the loop header text:
//!
//! 1. `while`/`loop` have no static trip count → unbounded;
//! 2. headers naming `neighbor`/`candidate` collections → `neighbors`;
//! 3. headers naming `bucket`s → `log` (the calendar-queue day scan,
//!    whose amortized bound the scheduler documents);
//! 4. headers naming `node`s/`peer`s/mobility state → `nodes`;
//! 5. literal or `SCREAMING_CASE`-constant ranges → constant;
//! 6. anything else → `nodes` (a sound over-approximation).
//!
//! Iterator adaptors (`map`, `filter`, …) count as loops only when
//! their receiver chain visibly produces an iterator (`.iter()`,
//! ranges, `.drain()`, …); `Option`/`Result` combinators run at most
//! once and are ignored.
//!
//! Hot-path functions declare their class with a `// complexity: <c>`
//! contract comment; `complexity-budgets.toml` pins the certified
//! classes. All checks are equalities: an overrun fails the gate, and
//! so do slack, a stale contract, or a missing marker — the committed
//! budget must say exactly what the analysis proves. Individual loops
//! or calls can be excused with `// complexity-ok: <reason>`; a bare
//! marker without a reason is itself a finding.
//!
//! Certifying the per-event dispatch root (`Network::handle`) at
//! `neighbors` implies no node-quadratic path is reachable from it:
//! class propagation is monotone, so any `nodes`-bound callee would
//! surface in the root's class unless a reviewed suppression
//! explicitly severs it.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use crate::callgraph::CallGraph;
use crate::parser::{Call, FnItem, ParsedFile};
use crate::{suppression_near, Finding, Suppression};

/// Contract comment tying a function declaration to its class.
pub const CONTRACT_MARKER: &str = "// complexity:";

/// Suppression marker excusing one loop or call site.
pub const SUPPRESS_MARKER: &str = "complexity-ok:";

/// File label used for findings about the budget file itself.
pub const BUDGET_FILE: &str = "complexity-budgets.toml";

/// Per-factor degree cap; any product beyond `nodes²`-style degrees is
/// treated as unbounded (nothing on a per-event budget should get
/// near it).
const MAX_POW: u8 = 2;

/// A symbolic asymptotic class: `nodes^a · neighbors^b · log^c`, or
/// unbounded when no static bound exists (recursion, `while`/`loop`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Class {
    nodes: u8,
    neighbors: u8,
    log: u8,
    unbounded: bool,
}

impl Class {
    /// Constant work: the lattice bottom.
    pub const CONST: Self = Self {
        nodes: 0,
        neighbors: 0,
        log: 0,
        unbounded: false,
    };

    /// No static bound: the lattice top.
    pub const UNBOUNDED: Self = Self {
        nodes: 0,
        neighbors: 0,
        log: 0,
        unbounded: true,
    };

    fn of(nodes: u8, neighbors: u8, log: u8) -> Self {
        Self {
            nodes,
            neighbors,
            log,
            unbounded: false,
        }
    }

    /// One factor of the network size.
    pub const NODES: Self = Self {
        nodes: 1,
        neighbors: 0,
        log: 0,
        unbounded: false,
    };

    /// One factor of the density-bounded neighbor count.
    pub const NEIGHBORS: Self = Self {
        nodes: 0,
        neighbors: 1,
        log: 0,
        unbounded: false,
    };

    /// One logarithmic factor.
    pub const LOG: Self = Self {
        nodes: 0,
        neighbors: 0,
        log: 1,
        unbounded: false,
    };

    /// Parses `"const"` or a `*`-product of `nodes`/`neighbors`/`log`
    /// factors, each optionally squared (`nodes^2`).
    pub fn parse(text: &str) -> Option<Self> {
        let t = text.trim();
        if t == "const" {
            return Some(Self::CONST);
        }
        if t.is_empty() {
            return None;
        }
        let mut out = Self::CONST;
        for factor in t.split('*') {
            let f = factor.trim();
            let (base, pow) = match f.split_once('^') {
                Some((b, p)) => (b.trim(), p.trim().parse::<u8>().ok()?),
                None => (f, 1),
            };
            if pow == 0 || pow > MAX_POW {
                return None;
            }
            let slot = match base {
                "nodes" => &mut out.nodes,
                "neighbors" => &mut out.neighbors,
                "log" => &mut out.log,
                _ => return None,
            };
            *slot = slot.checked_add(pow).filter(|&v| v <= MAX_POW)?;
        }
        Some(out)
    }

    /// Sequential composition inside a loop: degrees add, saturating to
    /// unbounded past the degree cap.
    pub fn times(self, other: Self) -> Self {
        if self.unbounded || other.unbounded {
            return Self::UNBOUNDED;
        }
        let (n, b, l) = (
            self.nodes + other.nodes,
            self.neighbors + other.neighbors,
            self.log + other.log,
        );
        if n > MAX_POW || b > MAX_POW || l > MAX_POW {
            Self::UNBOUNDED
        } else {
            Self::of(n, b, l)
        }
    }

    /// Worst case of two alternatives (branch join).
    pub fn join(self, other: Self) -> Self {
        if self.unbounded || other.unbounded {
            return Self::UNBOUNDED;
        }
        Self::of(
            self.nodes.max(other.nodes),
            self.neighbors.max(other.neighbors),
            self.log.max(other.log),
        )
    }

    /// Component-wise ≤ (false whenever `self` is unbounded and `other`
    /// is not).
    fn le(self, other: Self) -> bool {
        if other.unbounded {
            return true;
        }
        !self.unbounded
            && self.nodes <= other.nodes
            && self.neighbors <= other.neighbors
            && self.log <= other.log
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.unbounded {
            return write!(f, "unbounded");
        }
        let mut factors = Vec::new();
        for (name, pow) in [
            ("nodes", self.nodes),
            ("neighbors", self.neighbors),
            ("log", self.log),
        ] {
            match pow {
                0 => {}
                1 => factors.push(name.to_owned()),
                p => factors.push(format!("{name}^{p}")),
            }
        }
        if factors.is_empty() {
            write!(f, "const")
        } else {
            write!(f, "{}", factors.join(" * "))
        }
    }
}

// ---------------------------------------------------------------------
// Loop-span scanning
// ---------------------------------------------------------------------

/// Iterator adaptors whose closure runs once per item. Kept in sync
/// with the parser's call-context list.
const PER_ITEM_ADAPTORS: &[&str] = &[
    "map",
    "for_each",
    "flat_map",
    "filter_map",
    "filter",
    "fold",
    "retain",
    "scan",
    "inspect",
];

/// Receiver fragments that visibly produce an iterator. An adaptor on
/// any other receiver is treated as an `Option`/`Result` combinator
/// (at most one execution), not a loop.
const ITERATOR_HINTS: &[&str] = &[
    "..",
    ".iter",
    ".into_iter",
    ".drain",
    ".chars",
    ".bytes",
    ".lines",
    ".split",
    ".windows",
    ".chunks",
    ".keys",
    ".values",
    ".enumerate",
    ".flatten",
    ".zip",
    ".rev(",
];

/// One repeated-execution region of a body.
struct Span {
    /// Char index of the region opener (`{` for loops, `(` for
    /// adaptors) in the scrubbed body.
    open: usize,
    /// Matching closer.
    close: usize,
    /// 1-based source line of the loop keyword / adaptor dot — the
    /// anchor for suppression comments.
    line: usize,
    /// 1-based line range of the region, for call containment.
    open_line: usize,
    close_line: usize,
    /// Iteration bound (before suppression).
    bound: Class,
}

fn ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn starts_word_at(chars: &[char], i: usize, word: &str) -> bool {
    let pat: Vec<char> = word.chars().collect();
    i + pat.len() <= chars.len()
        && chars[i..i + pat.len()] == pat[..]
        && (i == 0 || !ident_char(chars[i - 1]))
        && chars.get(i + pat.len()).is_none_or(|c| !ident_char(*c))
}

fn skip_ws(chars: &[char], mut i: usize) -> usize {
    while i < chars.len() && chars[i].is_whitespace() {
        i += 1;
    }
    i
}

fn match_delim(chars: &[char], open: usize, oc: char, cc: char) -> Option<usize> {
    let mut depth = 0i32;
    for (j, &c) in chars.iter().enumerate().skip(open) {
        if c == oc {
            depth += 1;
        } else if c == cc {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// The `{` opening a loop body: the first brace at paren/bracket depth
/// zero after the loop keyword.
fn loop_body_open(chars: &[char], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, &c) in chars.iter().enumerate().skip(from) {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            '{' if depth == 0 => return Some(j),
            ';' | '}' if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Reconstructs the receiver chain ending at the `.` at `dot`:
/// identifiers, field accesses, `?`, and balanced `(..)`/`[..]` groups.
fn receiver_before(chars: &[char], dot: usize) -> String {
    let mut j = dot;
    while let Some(prev) = j.checked_sub(1) {
        let c = chars[prev];
        if ident_char(c) || c == '.' || c == '?' {
            j = prev;
            continue;
        }
        if c == ')' || c == ']' {
            let open_ch = if c == ')' { '(' } else { '[' };
            let mut depth = 0i32;
            let mut k = prev;
            loop {
                if chars[k] == c {
                    depth += 1;
                } else if chars[k] == open_ch {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                let Some(next) = k.checked_sub(1) else {
                    return chars[j..dot].iter().collect();
                };
                k = next;
            }
            j = k;
            continue;
        }
        break;
    }
    chars[j..dot].iter().collect()
}

/// True when a `..`/`..=` range ends in an integer literal or a
/// `SCREAMING_CASE` constant — a compile-time-constant trip count.
fn const_range(text: &str) -> bool {
    let Some(pos) = text.find("..") else {
        return false;
    };
    let tail = text[pos + 2..]
        .strip_prefix('=')
        .unwrap_or(&text[pos + 2..]);
    let token: String = tail
        .trim_start()
        .chars()
        .take_while(|&c| ident_char(c))
        .collect();
    !token.is_empty() && !token.chars().any(|c| c.is_ascii_lowercase())
}

/// Classifies an iteration source (a `for` header or an adaptor
/// receiver) into its bound. Order matters: named collections win over
/// the constant-range check so `0..num_nodes` stays node-bound.
fn classify_iterable(text: &str) -> Class {
    let lower = text.to_ascii_lowercase();
    if lower.contains("neighbor") || lower.contains("candidate") {
        Class::NEIGHBORS
    } else if lower.contains("bucket") {
        Class::LOG
    } else if lower.contains("node") || lower.contains("peer") || lower.contains("mobilit") {
        Class::NODES
    } else if const_range(text) {
        Class::CONST
    } else {
        Class::NODES
    }
}

fn receiver_is_iterator(recv: &str) -> bool {
    ITERATOR_HINTS.iter().any(|h| recv.contains(h))
}

/// Scans a scrubbed body for loop and per-item-adaptor spans.
fn scan_spans(chars: &[char], body_line: usize) -> Vec<Span> {
    let mut newlines = vec![0usize; chars.len() + 1];
    for (i, &c) in chars.iter().enumerate() {
        newlines[i + 1] = newlines[i] + usize::from(c == '\n');
    }
    let line_of = |i: usize| body_line + newlines[i.min(chars.len())];

    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        for kw in ["for", "while", "loop"] {
            if !starts_word_at(chars, i, kw) {
                continue;
            }
            let after = skip_ws(chars, i + kw.len());
            // `for<'a>` is a higher-ranked bound, not a loop.
            if kw == "for" && chars.get(after) == Some(&'<') {
                continue;
            }
            let Some(open) = loop_body_open(chars, i + kw.len()) else {
                continue;
            };
            let Some(close) = match_delim(chars, open, '{', '}') else {
                continue;
            };
            let bound = if kw == "for" {
                let header: String = chars[i + kw.len()..open].iter().collect();
                classify_iterable(&header)
            } else {
                Class::UNBOUNDED
            };
            out.push(Span {
                open,
                close,
                line: line_of(i),
                open_line: line_of(open),
                close_line: line_of(close),
                bound,
            });
        }
        if chars[i] == '.' {
            let start = i + 1;
            let mut j = start;
            while j < chars.len() && ident_char(chars[j]) {
                j += 1;
            }
            let name: String = chars[start..j].iter().collect();
            let open = skip_ws(chars, j);
            if PER_ITEM_ADAPTORS.contains(&name.as_str()) && chars.get(open) == Some(&'(') {
                if let Some(close) = match_delim(chars, open, '(', ')') {
                    let recv = receiver_before(chars, i);
                    if receiver_is_iterator(&recv) {
                        out.push(Span {
                            open,
                            close,
                            line: line_of(i),
                            open_line: line_of(open),
                            close_line: line_of(close),
                            bound: classify_iterable(&recv),
                        });
                    }
                }
            }
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------

/// Looks for a suppression on `line` or above the *statement* holding
/// it: when the preceding line visibly continues the same statement (a
/// builder chain, a multi-line `let`), the search walks up to the
/// statement head so one comment covers the whole chain.
fn statement_suppressed(lines: &[&str], line: usize) -> Suppression {
    let mut l = line;
    loop {
        let s = suppression_near(lines, l, SUPPRESS_MARKER);
        if s != Suppression::None {
            return s;
        }
        let Some(prev) = l.checked_sub(1).filter(|&p| p >= 1) else {
            return Suppression::None;
        };
        let Some(text) = lines.get(prev - 1) else {
            return Suppression::None;
        };
        let t = text.trim();
        if t.is_empty()
            || t.starts_with("//")
            || t.ends_with(';')
            || t.ends_with('{')
            || t.ends_with('}')
        {
            return Suppression::None;
        }
        l = prev;
    }
}

// ---------------------------------------------------------------------
// Per-function local analysis
// ---------------------------------------------------------------------

/// Loop structure of one function, after suppressions.
struct Local {
    /// Join over every loop nest's iteration product.
    loops: Class,
    /// Per call index: the product of enclosing loop bounds.
    call_ctx: Vec<Class>,
    /// Per call index: true when a justified suppression severs the
    /// call's edges.
    call_suppressed: Vec<bool>,
}

fn local_analysis(f: &FnItem, file: &ParsedFile, findings: &mut Vec<Finding>) -> Local {
    let chars: Vec<char> = f.body.chars().collect();
    let lines: Vec<&str> = file.raw_lines.iter().map(String::as_str).collect();
    let mut bare = |line: usize| {
        let finding = Finding {
            file: file.path.clone(),
            line,
            lint: "complexity",
            message: format!(
                "`// {SUPPRESS_MARKER}` gives no reason — justify the suppression or remove it"
            ),
        };
        if !findings.contains(&finding) {
            findings.push(finding);
        }
    };

    let mut spans = scan_spans(&chars, f.body_line);
    for s in &mut spans {
        match statement_suppressed(&lines, s.line) {
            Suppression::Justified => s.bound = Class::CONST,
            Suppression::MissingReason => bare(s.line),
            Suppression::None => {}
        }
    }

    // Each loop's cost is its own bound times every enclosing bound.
    let mut loops = Class::CONST;
    for (si, s) in spans.iter().enumerate() {
        let mut product = s.bound;
        for (ti, t) in spans.iter().enumerate() {
            if ti != si && t.open < s.open && s.close < t.close {
                product = product.times(t.bound);
            }
        }
        loops = loops.join(product);
    }

    // Calls inherit the product of the loop spans whose line range
    // contains them (a line-level over-approximation: a call in a loop
    // header counts as per-iteration, which only errs upward).
    let mut call_ctx = Vec::with_capacity(f.calls.len());
    let mut call_suppressed = Vec::with_capacity(f.calls.len());
    for call in &f.calls {
        let mut ctx = Class::CONST;
        for s in &spans {
            if s.open_line <= call.line && call.line <= s.close_line {
                ctx = ctx.times(s.bound);
            }
        }
        call_ctx.push(ctx);
        match statement_suppressed(&lines, call.line) {
            Suppression::Justified => call_suppressed.push(true),
            Suppression::MissingReason => {
                bare(call.line);
                call_suppressed.push(false);
            }
            Suppression::None => call_suppressed.push(false),
        }
    }

    Local {
        loops,
        call_ctx,
        call_suppressed,
    }
}

// ---------------------------------------------------------------------
// Interprocedural propagation
// ---------------------------------------------------------------------

fn file_stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .strip_suffix(".rs")
        .unwrap_or(path)
}

/// Method names shared with the std container/primitive APIs. A method
/// call with one of these names on any receiver other than literal
/// `self` is almost certainly `Vec::len`, `HashMap::remove`, … — not
/// the same-named in-scope function the name-based call graph links it
/// to. Without this filter, `self.routes.len()` makes `RoutingTable::
/// len` recursive and every caller saturates to unbounded.
const STD_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "push",
    "pop",
    "insert",
    "remove",
    "resize",
    "clear",
    "extend",
    "append",
    "get",
    "last",
    "first",
    "min",
    "max",
    "sort",
    "sort_unstable",
    "saturating_mul",
    "saturating_add",
    "saturating_sub",
];

/// Whether an edge survives qualifier matching: a qualified call
/// (`Area::new`, `Self::digest`) only links to callees whose owner or
/// file matches the qualifier. This drops the name-only fallback edges
/// (`Vec::new` → every in-scope `new`) that would otherwise leak
/// constructor costs into the hot path. Method calls with std-container
/// names ([`STD_METHODS`]) additionally require a literal `self`
/// receiver.
fn edge_kept(
    files: &[ParsedFile],
    graph: &CallGraph,
    caller: &FnItem,
    call: &Call,
    callee: usize,
) -> bool {
    if call.is_method
        && STD_METHODS.contains(&call.callee.as_str())
        && call.receiver.as_deref().map(str::trim) != Some("self")
    {
        return false;
    }
    let Some(q) = &call.qualifier else {
        return true;
    };
    let q = if q == "Self" {
        match &caller.owner {
            Some(o) => o.as_str(),
            None => return true,
        }
    } else {
        q.as_str()
    };
    let target = graph.item(files, callee);
    if target.owner.as_deref() == Some(q) {
        return true;
    }
    file_stem(&graph.file(files, callee).path).eq_ignore_ascii_case(q)
}

/// Iterative Tarjan SCC over a filtered adjacency list, emitting
/// components in reverse topological order (callees before callers).
fn sccs(succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct State {
        index: usize,
        lowlink: usize,
        on_stack: bool,
        visited: bool,
    }
    let n = succ.len();
    let mut state = vec![
        State {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut stack = Vec::new();
    let mut next_index = 0;
    let mut components = Vec::new();
    for root in 0..n {
        if state[root].visited {
            continue;
        }
        let mut work = vec![(root, 0usize)];
        while let Some(&mut (v, ref mut ei)) = work.last_mut() {
            if *ei == 0 {
                state[v].visited = true;
                state[v].index = next_index;
                state[v].lowlink = next_index;
                next_index += 1;
                state[v].on_stack = true;
                stack.push(v);
            }
            if let Some(&w) = succ[v].get(*ei) {
                *ei += 1;
                if !state[w].visited {
                    work.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index);
                }
                continue;
            }
            work.pop();
            if let Some(&(parent, _)) = work.last() {
                state[parent].lowlink = state[parent].lowlink.min(state[v].lowlink);
            }
            if state[v].lowlink == state[v].index {
                let mut component = Vec::new();
                while let Some(w) = stack.pop() {
                    state[w].on_stack = false;
                    component.push(w);
                    if w == v {
                        break;
                    }
                }
                component.sort_unstable();
                components.push(component);
            }
        }
    }
    components
}

/// Worst-case class of every call-graph node, bottom-up over the SCC
/// condensation of the suppression- and qualifier-filtered graph.
/// Members of a non-trivial SCC (or a self-loop) saturate to
/// unbounded. Also returns the bare-suppression findings collected
/// along the way.
pub fn compute_classes(files: &[ParsedFile], graph: &CallGraph) -> (Vec<Class>, Vec<Finding>) {
    let n = graph.nodes.len();
    let mut findings = Vec::new();
    let locals: Vec<Local> = (0..n)
        .map(|ni| local_analysis(graph.item(files, ni), graph.file(files, ni), &mut findings))
        .collect();

    // Kept edges, grouped by call site.
    let mut by_call: Vec<BTreeMap<usize, Vec<usize>>> = Vec::with_capacity(n);
    let mut succ: Vec<Vec<usize>> = Vec::with_capacity(n);
    for (ni, local) in locals.iter().enumerate() {
        let f = graph.item(files, ni);
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for e in &graph.edges[ni] {
            if local.call_suppressed[e.call] {
                continue;
            }
            if edge_kept(files, graph, f, &f.calls[e.call], e.callee) {
                groups.entry(e.call).or_default().push(e.callee);
            }
        }
        let mut targets: Vec<usize> = groups.values().flatten().copied().collect();
        targets.sort_unstable();
        targets.dedup();
        succ.push(targets);
        by_call.push(groups);
    }

    let mut classes = vec![Class::CONST; n];
    for component in sccs(&succ) {
        let cyclic = component.len() > 1
            || component
                .iter()
                .any(|&ni| succ[ni].binary_search(&ni).is_ok());
        if cyclic {
            for &ni in &component {
                classes[ni] = Class::UNBOUNDED;
            }
            continue;
        }
        let ni = component[0];
        let mut class = locals[ni].loops;
        for (&ci, callees) in &by_call[ni] {
            let mut candidate = Class::CONST;
            for &t in callees {
                candidate = candidate.join(classes[t]);
            }
            class = class.join(locals[ni].call_ctx[ci].times(candidate));
        }
        classes[ni] = class;
    }
    (classes, findings)
}

// ---------------------------------------------------------------------
// Budgets and contracts
// ---------------------------------------------------------------------

/// One entry of `complexity-budgets.toml`.
#[derive(Debug, Clone)]
pub struct BudgetEntry {
    /// Section name, e.g. `sim.scheduler_pop`.
    pub key: String,
    /// The budgeted function's name.
    pub fn_name: String,
    /// The `impl` owner, when given.
    pub owner: Option<String>,
    /// The certified class.
    pub class: Class,
    /// Source line of the section header.
    pub line: usize,
}

/// The parsed budget file.
#[derive(Debug, Clone, Default)]
pub struct Budgets {
    /// Entries in file order.
    pub entries: Vec<BudgetEntry>,
}

impl Budgets {
    fn get(&self, key: &str) -> Option<&BudgetEntry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// Parses the committed budget file: a TOML subset of `[a.b]` section
/// headers and `key = "value"` string assignments, with `#` comments.
pub fn parse_budgets(text: &str) -> Result<Budgets, String> {
    let mut budgets = Budgets::default();
    let mut current: Option<(BudgetEntry, bool)> = None;
    let finish = |budgets: &mut Budgets, (entry, has_class): (BudgetEntry, bool)| {
        if entry.fn_name.is_empty() {
            return Err(format!(
                "entry `{}` (line {}) is missing its `fn = \"...\"` target",
                entry.key, entry.line
            ));
        }
        if !has_class {
            return Err(format!(
                "entry `{}` (line {}) is missing its `class = \"...\"` bound",
                entry.key, entry.line
            ));
        }
        if budgets.get(&entry.key).is_some() {
            return Err(format!(
                "duplicate entry `{}` (line {})",
                entry.key, entry.line
            ));
        }
        budgets.entries.push(entry);
        Ok(())
    };
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(key) = rest.strip_suffix(']') else {
                return Err(format!("line {lineno}: malformed section header `{line}`"));
            };
            let key = key.trim();
            if key.is_empty() {
                return Err(format!("line {lineno}: empty section name"));
            }
            if let Some(done) = current.take() {
                finish(&mut budgets, done)?;
            }
            current = Some((
                BudgetEntry {
                    key: key.to_owned(),
                    fn_name: String::new(),
                    owner: None,
                    class: Class::CONST,
                    line: lineno,
                },
                false,
            ));
            continue;
        }
        let Some((entry, has_class)) = current.as_mut() else {
            return Err(format!("line {lineno}: assignment outside any [section]"));
        };
        let Some((k, v)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = \"value\"`"));
        };
        let k = k.trim();
        let v = v.trim();
        let Some(v) = v.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            return Err(format!(
                "line {lineno}: value for `{k}` must be a quoted string"
            ));
        };
        match k {
            "fn" => entry.fn_name = v.to_owned(),
            "impl" => entry.owner = Some(v.to_owned()),
            "class" => {
                let Some(class) = Class::parse(v) else {
                    return Err(format!(
                        "line {lineno}: `class = \"{v}\"` is not a product of \
                         `nodes`/`neighbors`/`log` factors or `const`"
                    ));
                };
                entry.class = class;
                *has_class = true;
            }
            other => return Err(format!("line {lineno}: unknown key `{other}`")),
        }
    }
    if let Some(done) = current.take() {
        finish(&mut budgets, done)?;
    }
    Ok(budgets)
}

/// Human-readable target of a budget entry (`Scheduler::pop`).
fn entry_target(entry: &BudgetEntry) -> String {
    match &entry.owner {
        Some(o) => format!("{o}::{}", entry.fn_name),
        None => entry.fn_name.clone(),
    }
}

/// The `// complexity: <class>` contract above a declaration, if any:
/// a trailing comment on the declaration line, or a comment-only line
/// in the contiguous comment/attribute run directly above. Doc-comment
/// prose mentioning the marker (e.g. inside backticks after `///`)
/// does not count.
fn contract_text(raw_lines: &[String], decl_line: usize) -> Option<(String, usize)> {
    let text_of = |text: &str, trailing: bool| -> Option<String> {
        if trailing {
            let pos = text.find(CONTRACT_MARKER)?;
            if text[..pos].ends_with('/') {
                return None;
            }
            Some(text[pos + CONTRACT_MARKER.len()..].trim().to_owned())
        } else {
            text.trim_start()
                .strip_prefix(CONTRACT_MARKER)
                .map(|rest| rest.trim().to_owned())
        }
    };
    if let Some(text) = raw_lines.get(decl_line.wrapping_sub(1)) {
        if let Some(t) = text_of(text, true) {
            return Some((t, decl_line));
        }
    }
    let mut above = decl_line.wrapping_sub(1);
    while above >= 1 {
        let Some(text) = raw_lines.get(above - 1) else {
            break;
        };
        let t = text.trim_start();
        if !t.starts_with("//") && !t.starts_with("#[") {
            break;
        }
        if let Some(t) = text_of(text, false) {
            return Some((t, above));
        }
        above -= 1;
    }
    None
}

/// Runs the certification over parsed files against the budgets.
pub fn analyze(files: &[ParsedFile], budgets: &Budgets) -> Vec<Finding> {
    let graph = CallGraph::build(files);
    let (classes, mut findings) = compute_classes(files, &graph);

    let mut budgeted: BTreeSet<usize> = BTreeSet::new();
    for entry in &budgets.entries {
        let matches: Vec<usize> = graph
            .named(&entry.fn_name)
            .iter()
            .copied()
            .filter(|&ni| graph.item(files, ni).owner.as_deref() == entry.owner.as_deref())
            .collect();
        match matches.as_slice() {
            [] => findings.push(Finding {
                file: BUDGET_FILE.to_owned(),
                line: entry.line,
                lint: "complexity",
                message: format!(
                    "dead budget entry `{}`: no non-test function `{}` exists in the analyzed \
                     crates",
                    entry.key,
                    entry_target(entry)
                ),
            }),
            [ni] => {
                budgeted.insert(*ni);
                findings.extend(check_entry(files, &graph, &classes, entry, *ni));
            }
            many => {
                let sites: Vec<String> = many
                    .iter()
                    .map(|&ni| graph.file(files, ni).path.clone())
                    .collect();
                findings.push(Finding {
                    file: BUDGET_FILE.to_owned(),
                    line: entry.line,
                    lint: "complexity",
                    message: format!(
                        "ambiguous budget entry `{}`: `{}` matches {} functions ({})",
                        entry.key,
                        entry_target(entry),
                        many.len(),
                        sites.join(", ")
                    ),
                });
            }
        }
    }

    // Reverse direction: every unbudgeted contract must agree with the
    // analysis, so drive-by markers cannot rot.
    for (ni, inferred) in classes.iter().enumerate() {
        if budgeted.contains(&ni) {
            continue;
        }
        let f = graph.item(files, ni);
        let file = graph.file(files, ni);
        let Some((text, line)) = contract_text(&file.raw_lines, f.decl_line) else {
            continue;
        };
        match Class::parse(&text) {
            None => findings.push(Finding {
                file: file.path.clone(),
                line,
                lint: "complexity",
                message: format!(
                    "cannot parse `{CONTRACT_MARKER} {text}` on `{}` (expected factors of \
                     `nodes`/`neighbors`/`log`, or `const`)",
                    f.name
                ),
            }),
            Some(declared) if declared != *inferred => findings.push(Finding {
                file: file.path.clone(),
                line,
                lint: "complexity",
                message: format!(
                    "stale contract: `{}` declares `{CONTRACT_MARKER} {declared}` but the \
                     analysis infers {inferred}",
                    f.name
                ),
            }),
            Some(_) => {}
        }
    }

    findings
}

/// Checks one resolved budget entry against the inferred class.
fn check_entry(
    files: &[ParsedFile],
    graph: &CallGraph,
    classes: &[Class],
    entry: &BudgetEntry,
    ni: usize,
) -> Vec<Finding> {
    let f = graph.item(files, ni);
    let file = graph.file(files, ni);
    let mut findings = Vec::new();
    let target = entry_target(entry);

    match contract_text(&file.raw_lines, f.decl_line) {
        None => findings.push(Finding {
            file: file.path.clone(),
            line: f.decl_line,
            lint: "complexity",
            message: format!(
                "budgeted function `{target}` lacks a `{CONTRACT_MARKER} {}` contract above \
                 its declaration",
                entry.class
            ),
        }),
        Some((text, line)) => match Class::parse(&text) {
            Some(declared) if declared == entry.class => {}
            Some(declared) => findings.push(Finding {
                file: file.path.clone(),
                line,
                lint: "complexity",
                message: format!(
                    "`{target}` is budgeted `{}` in `{}` but declares `{CONTRACT_MARKER} \
                     {declared}`",
                    entry.class, entry.key
                ),
            }),
            None => findings.push(Finding {
                file: file.path.clone(),
                line,
                lint: "complexity",
                message: format!(
                    "cannot parse `{CONTRACT_MARKER} {text}` on `{target}` (expected factors \
                     of `nodes`/`neighbors`/`log`, or `const`)"
                ),
            }),
        },
    }

    let inferred = classes[ni];
    if inferred == entry.class {
        return findings;
    }
    let message = if inferred.unbounded {
        format!(
            "`{target}` has no static complexity bound (recursion or an unclassified \
             `while`/`loop` reaches it); budget `{}` demands {}",
            entry.key, entry.class
        )
    } else if inferred.le(entry.class) {
        format!(
            "`{target}` computes to {inferred}, below its budget `{}` = {}; tighten the \
             committed class",
            entry.key, entry.class
        )
    } else {
        format!(
            "`{target}` computes to {inferred}, exceeding its budget `{}` = {}",
            entry.key, entry.class
        )
    };
    findings.push(Finding {
        file: file.path.clone(),
        line: f.decl_line,
        lint: "complexity",
        message,
    });
    findings
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use crate::parser::parse_files;

    fn parsed(src: &str) -> Vec<ParsedFile> {
        parse_files(&[("crates/sim/src/t.rs".to_owned(), src.to_owned())])
    }

    fn run(src: &str, budgets: &str) -> Vec<Finding> {
        analyze(&parsed(src), &parse_budgets(budgets).unwrap())
    }

    #[test]
    fn class_parse_display_roundtrip() {
        for text in [
            "const",
            "nodes",
            "neighbors",
            "log",
            "nodes^2",
            "nodes * log",
        ] {
            let c = Class::parse(text).unwrap();
            assert_eq!(c.to_string(), text);
        }
        assert!(Class::parse("n^3").is_none());
        assert!(Class::parse("nodes^3").is_none());
        assert!(Class::parse("nodes * nodes * nodes").is_none());
        assert_eq!(
            Class::parse("nodes * nodes").unwrap(),
            Class::parse("nodes^2").unwrap()
        );
    }

    #[test]
    fn times_saturates_past_the_degree_cap() {
        let n2 = Class::NODES.times(Class::NODES);
        assert_eq!(n2.to_string(), "nodes^2");
        assert_eq!(n2.times(Class::NODES), Class::UNBOUNDED);
        assert_eq!(Class::UNBOUNDED.join(Class::CONST), Class::UNBOUNDED);
        assert_eq!(Class::NODES.join(Class::LOG).to_string(), "nodes * log");
    }

    #[test]
    fn headers_classify_by_collection_name() {
        assert_eq!(
            classify_iterable(" n in &self.neighbors "),
            Class::NEIGHBORS
        );
        assert_eq!(
            classify_iterable(" c in candidates.iter() "),
            Class::NEIGHBORS
        );
        assert_eq!(classify_iterable(" k in 0..nbuckets "), Class::LOG);
        assert_eq!(classify_iterable(" i in 0..num_nodes "), Class::NODES);
        assert_eq!(classify_iterable(" _ in 0..16 "), Class::CONST);
        assert_eq!(classify_iterable(" _ in 0..MAX_ROUNDS "), Class::CONST);
        assert_eq!(classify_iterable(" x in mystery "), Class::NODES);
    }

    #[test]
    fn quadratic_scan_exceeds_a_neighbor_budget() {
        let findings = run(
            "// complexity: neighbors\n\
             fn scan(all_nodes: &[u32]) -> u32 {\n\
                 let mut acc = 0;\n\
                 for a in all_nodes {\n\
                     for b in all_nodes {\n\
                         acc += a ^ b;\n\
                     }\n\
                 }\n\
                 acc\n\
             }\n",
            "[fixture.scan]\nfn = \"scan\"\nclass = \"neighbors\"\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("nodes^2"), "{findings:?}");
        assert!(findings[0].message.contains("exceeding"), "{findings:?}");
    }

    #[test]
    fn slack_and_missing_marker_both_fail() {
        let findings = run(
            "fn tiny() -> u32 { 7 }\n",
            "[fixture.tiny]\nfn = \"tiny\"\nclass = \"log\"\n",
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("lacks a")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("below its budget")));
    }

    #[test]
    fn mutual_recursion_saturates_to_unbounded() {
        let findings = run(
            "// complexity: const\n\
             fn ping(x: u32) -> u32 { if x == 0 { 0 } else { pong(x - 1) } }\n\
             fn pong(x: u32) -> u32 { ping(x) }\n",
            "[fixture.ping]\nfn = \"ping\"\nclass = \"const\"\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("no static complexity bound"));
    }

    #[test]
    fn justified_suppression_downgrades_and_bare_marker_fires() {
        let clean = run(
            "// complexity: const\n\
             fn pump(xs: &[u32]) -> u32 {\n\
                 let mut acc = 0;\n\
                 // complexity-ok: xs is a fixed-width register file\n\
                 for x in xs {\n\
                     acc += x;\n\
                 }\n\
                 acc\n\
             }\n",
            "[fixture.pump]\nfn = \"pump\"\nclass = \"const\"\n",
        );
        assert!(clean.is_empty(), "{clean:?}");

        let bare = run(
            "// complexity: const\n\
             fn pump(xs: &[u32]) -> u32 {\n\
                 let mut acc = 0;\n\
                 // complexity-ok:\n\
                 for x in xs {\n\
                     acc += x;\n\
                 }\n\
                 acc\n\
             }\n",
            "[fixture.pump]\nfn = \"pump\"\nclass = \"const\"\n",
        );
        assert!(
            bare.iter().any(|f| f.message.contains("gives no reason")),
            "{bare:?}"
        );
    }

    #[test]
    fn suppression_covers_a_multiline_statement() {
        let findings = run(
            "// complexity: const\n\
             fn longest(xs: &[u64]) -> u64 {\n\
                 // complexity-ok: diagnostic over a fixed probe set\n\
                 let best = xs\n\
                     .iter()\n\
                     .map(|x| x + 1)\n\
                     .max();\n\
                 best.unwrap_or(0)\n\
             }\n",
            "[fixture.longest]\nfn = \"longest\"\nclass = \"const\"\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn option_combinators_are_not_loops() {
        let findings = run(
            "// complexity: const\n\
             fn pick(t: &std::collections::BTreeMap<u32, u32>) -> u32 {\n\
                 t.get(&1).map(|v| v + 1).unwrap_or(0)\n\
             }\n",
            "[fixture.pick]\nfn = \"pick\"\nclass = \"const\"\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn iterator_adaptors_do_count() {
        let findings = run(
            "fn total(xs: &[u64]) -> u64 {\n\
                 xs.iter().map(|x| x * 2).sum()\n\
             }\n",
            "[fixture.total]\nfn = \"total\"\nclass = \"const\"\n",
        );
        assert!(
            findings.iter().any(|f| f.message.contains("exceeding")),
            "{findings:?}"
        );
    }

    #[test]
    fn calls_compose_multiplicatively_through_loops() {
        let findings = run(
            "// complexity: nodes * log\n\
             fn sweep(all_nodes: &[u32]) -> u32 {\n\
                 let mut acc = 0;\n\
                 for n in all_nodes {\n\
                     acc += probe(*n);\n\
                 }\n\
                 acc\n\
             }\n\
             fn probe(x: u32) -> u32 {\n\
                 let mut acc = x;\n\
                 for b in 0..nbuckets_of(x) {\n\
                     acc ^= b;\n\
                 }\n\
                 acc\n\
             }\n\
             fn nbuckets_of(x: u32) -> u32 { x | 1 }\n",
            "[fixture.sweep]\nfn = \"sweep\"\nclass = \"nodes * log\"\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn stale_contract_on_unbudgeted_fn_is_reported() {
        let findings = run(
            "// complexity: log\n\
             fn drifted(all_nodes: &[u32]) -> u32 {\n\
                 let mut acc = 0;\n\
                 for n in all_nodes {\n\
                     acc += n;\n\
                 }\n\
                 acc\n\
             }\n",
            "",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("stale contract"));
        assert!(findings[0].message.contains("infers nodes"));
    }

    #[test]
    fn dead_and_ambiguous_entries_are_reported() {
        let findings = run(
            "impl A { fn go(&self) {} }\n\
             impl B { fn go(&self) {} }\n",
            "[fixture.ghost]\nfn = \"ghost\"\nclass = \"const\"\n",
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("dead budget entry")),
            "{findings:?}"
        );
        let findings = run(
            "fn go() {}\nmod inner { pub fn go() {} }\n",
            "[fixture.go]\nfn = \"go\"\nclass = \"const\"\n",
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("ambiguous budget entry")),
            "{findings:?}"
        );
    }

    #[test]
    fn qualified_calls_only_link_matching_owners() {
        // `Vec::new()` must not link to the expensive in-scope `new`.
        let findings = run(
            "// complexity: const\n\
             fn fresh() -> u32 {\n\
                 let v: Vec<u32> = Vec::new();\n\
                 v.len() as u32\n\
             }\n\
             struct Pool;\n\
             impl Pool {\n\
                 fn new(all_nodes: &[u32]) -> u32 {\n\
                     let mut acc = 0;\n\
                     for n in all_nodes {\n\
                         acc += n;\n\
                     }\n\
                     acc\n\
                 }\n\
             }\n",
            "[fixture.fresh]\nfn = \"fresh\"\nclass = \"const\"\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn marker_budget_mismatch_is_reported() {
        let findings = run(
            "// complexity: nodes\n\
             fn walk(all_nodes: &[u32]) -> u32 {\n\
                 let mut acc = 0;\n\
                 for n in all_nodes {\n\
                     acc += n;\n\
                 }\n\
                 acc\n\
             }\n",
            "[fixture.walk]\nfn = \"walk\"\nclass = \"neighbors\"\n",
        );
        assert!(
            findings.iter().any(|f| f.message.contains("but declares")),
            "{findings:?}"
        );
    }

    #[test]
    fn budget_file_rejects_malformed_input() {
        assert!(parse_budgets("[a]\nfn = \"f\"\n").is_err(), "missing class");
        assert!(
            parse_budgets("[a]\nclass = \"const\"\n").is_err(),
            "missing fn"
        );
        assert!(
            parse_budgets("[a]\nfn = \"f\"\nclass = \"n^9\"\n").is_err(),
            "bad class"
        );
        assert!(
            parse_budgets(
                "[a]\nfn = \"f\"\nclass = \"const\"\n[a]\nfn = \"g\"\nclass = \"const\"\n"
            )
            .is_err(),
            "duplicate key"
        );
        assert!(parse_budgets("fn = \"f\"\n").is_err(), "no section");
    }

    #[test]
    fn while_loops_are_unbounded_unless_suppressed() {
        let findings = run(
            "// complexity: const\n\
             fn spin(mut x: u32) -> u32 {\n\
                 while x > 1 {\n\
                     x /= 2;\n\
                 }\n\
                 x\n\
             }\n",
            "[fixture.spin]\nfn = \"spin\"\nclass = \"const\"\n",
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("no static complexity bound")),
            "{findings:?}"
        );
    }
}
