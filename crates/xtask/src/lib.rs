//! `mccls-xtask` — the workspace's static-analysis gate.
//!
//! `cargo run -p mccls-xtask -- check` runs fourteen lints over the tree
//! and exits non-zero if any finding survives its suppression filter
//! (and, when a committed `xtask-baseline.json` exists, the
//! baseline diff — see [`baseline`]):
//!
//! * **panic** — no `unwrap`/`expect`/`panic!`-family macros or risky
//!   slice indexing in non-test code of the cryptographic crates
//!   (`mccls-hash`, `mccls-pairing`, `mccls-core`). Suppress a justified
//!   site with `// lint:allow(panic) <reason>`.
//! * **ct** — no branching on secret-carrying identifiers in
//!   `mccls-core`/`mccls-pairing`, using a light function-scoped taint
//!   pass seeded from the key-material field names and RNG draws.
//!   Suppress with `// ct-ok: <reason>`.
//! * **taint** — the interprocedural extension of **ct**: secrets are
//!   tracked across call edges and return values over the workspace
//!   call graph ([`taint`]), so a master secret branched on two calls
//!   below `sign()` is still caught. Same suppression marker; a
//!   published protocol value is declassified at its binding with
//!   `// taint-public: <reason>`.
//! * **reach** — panic-reachability from the public scheme API
//!   ([`reach`]): any `panic!`-family site reachable from
//!   `sign`/`verify`/key-extraction entry points is reported with its
//!   call chain.
//! * **validate** — the untrusted-input validation-state pass
//!   ([`validate`]): a value decoded from raw bytes (an unchecked
//!   `from_compressed_unchecked`-style decoder, an AODV message parser)
//!   must pass a curve/subgroup sanitizer before reaching a pairing or
//!   group-arithmetic sink. Declassify a reviewed construction with
//!   `// validated: <reason>`.
//! * **overflow** — the limb-overflow lint ([`overflow`]): no bare
//!   `+`/`-`/`*`/`<<` on `u64`/`u128` limb values in the pairing
//!   arithmetic; route carries through `wrapping_*`/`overflowing_*`/
//!   `carrying_*` or the `adc`/`sbb`/`mac` helpers. Suppress with
//!   `// overflow-ok: <reason>`.
//! * **range** — the magnitude-range certification lint ([`range`]):
//!   every function touching the lazy-reduction primitives
//!   (`add_unreduced`, `mul_unreduced`, `wide_sub_offset`, …) must
//!   declare a `// range: <class>` contract, and the declared classes
//!   are propagated through each body and checked against the limb
//!   headroom the `montgomery_field!` moduli actually leave. Overflowing
//!   chains, undersized `k·p²` offsets, unreduced values escaping into
//!   eager code, and stale or missing contracts all fail the gate.
//!   Suppress with `// range-ok: <reason>`.
//! * **opcount** — static certification of the Table 1 operation
//!   budgets ([`opcount`]): an interprocedural worst-case count of
//!   pairings, Miller loops, final exponentiations, scalar
//!   multiplications, `Gt` exponentiations, and hash-to-curve calls
//!   for every entry point budgeted in `opcount-budgets.toml`.
//!   Certification is exact — overruns, slack, unbounded paths
//!   (cycles, `while`/`loop`, unresolved pairing-product factors), and
//!   dead or unmarked budget entries all fail the gate.
//! * **complexity** — asymptotic-complexity certification of the
//!   simulation hot path ([`complexity`]): every function in
//!   `crates/sim`/`crates/aodv` gets a symbolic big-O class (products
//!   of `nodes`, `neighbors`, and `log` factors) inferred from its loop
//!   nests and composed bottom-up through the call graph; cycles and
//!   unclassified `while`/`loop`s saturate to unbounded. The entries of
//!   `complexity-budgets.toml` are checked as equalities against both
//!   the inferred class and the `// complexity: <class>` contract
//!   comment on the function — overruns, slack, stale or missing
//!   contracts, and dead budget entries all fail the gate. Certifying
//!   the per-event dispatch root at `neighbors` proves no
//!   node-quadratic path is reachable from it. Suppress a reviewed
//!   loop or call with `// complexity-ok: <reason>`.
//! * **concurrency** — the lock-discipline pass ([`concurrency`]):
//!   lock-acquisition order inferred from guard creation sites must be
//!   acyclic (static deadlock detection across registry shards), no
//!   guard may be live across a call whose certified cost includes a
//!   pairing, Miller loop, final exponentiation, or scalar
//!   multiplication (guards bracket map access only), hand-written
//!   `unsafe impl Send/Sync`, `static mut`, and interior-mutability
//!   cells reachable from the registry state are rejected, and guards
//!   bound to `_`, returned, or stored in structs are guard-extension
//!   hazards. Suppress a reviewed site with `// lock-ok: <reason>`.
//! * **secret** — the secret-lifecycle lint ([`secret_lint`]): no
//!   derived `Debug`/`Clone`/`Copy`/serialization on `MasterSecret`,
//!   `PartialPrivateKey`, or any struct holding them, and the seed
//!   types must zeroize in `Drop`. Suppress a deliberate exception
//!   with `// secret-ok: <reason>`.
//! * **backend** — the unsafe-island and backend-parity certification
//!   ([`simd_lint`]): `unsafe` is legal only inside
//!   `crates/pairing/src/simd/` and every occurrence there carries a
//!   reasoned `// unsafe-ok:` marker; every intrinsic appears on the
//!   committed `simd-intrinsics.toml` whitelist; raw-pointer
//!   arithmetic, `transmute`, and inline asm are always findings;
//!   every arch-gated kernel has a scalar twin with an identical
//!   signature and no packed vector type escapes the island's
//!   surface; lane-dependent branches, per-lane early exits, and
//!   `movemask`-style extraction are lane-ct violations; and the
//!   island's dispatch entry points declare identical `// range:`
//!   contracts within the field's headroom caps. Suppress reviewed
//!   parity/lane findings with `// backend-ok: <reason>`.
//! * **hygiene** — every crate keeps `#![forbid(unsafe_code)]` at its
//!   root (the pairing crate may use `deny` for the island exception)
//!   and opts into the shared `[workspace.lints]` table.
//! * **deps** — every `Cargo.toml` dependency resolves in-repo (path or
//!   workspace), keeping the build offline-safe by construction.
//!
//! Suppression reasons are mandatory everywhere: a marker whose reason
//! has no alphanumeric content is itself a finding.
//!
//! The crate is std-only on purpose: the gate must never be the reason
//! the offline build breaks.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod callgraph;
pub mod complexity;
pub mod concurrency;
pub mod ct_lint;
pub mod deps_lint;
pub mod hygiene_lint;
pub mod lexer;
pub mod opcount;
pub mod overflow;
pub mod panic_lint;
pub mod parser;
pub mod range;
pub mod reach;
pub mod report;
pub mod secret_lint;
pub mod simd_lint;
pub mod taint;
pub mod validate;

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint result, pointing at a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Short lint name: `panic`, `ct`, `hygiene`, or `deps`.
    pub lint: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Outcome of looking for a suppression comment near a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suppression {
    /// No marker present: the finding stands.
    None,
    /// Marker present with a written justification: finding suppressed.
    Justified,
    /// Marker present but no reason given: the finding stands, upgraded
    /// with a note — unexplained suppressions are themselves violations.
    MissingReason,
}

/// Looks for `marker` as a trailing comment on line `line` (1-based) or
/// anywhere in the contiguous run of comment-only lines directly above.
///
/// The text after the marker is the justification; it must contain at
/// least one alphanumeric character for the suppression to count —
/// whitespace-only or purely decorative "reasons" (`---`, `*/`) are
/// treated as missing.
pub fn suppression_near(lines: &[&str], line: usize, marker: &str) -> Suppression {
    fn marker_on(lines: &[&str], l: usize, marker: &str) -> Suppression {
        let Some(text) = lines.get(l.wrapping_sub(1)) else {
            return Suppression::None;
        };
        match text.find(marker) {
            None => Suppression::None,
            Some(pos) => {
                let reason = &text[pos + marker.len()..];
                if reason.chars().any(char::is_alphanumeric) {
                    Suppression::Justified
                } else {
                    Suppression::MissingReason
                }
            }
        }
    }

    let mut best = marker_on(lines, line, marker);
    let mut above = line.wrapping_sub(1);
    while best == Suppression::None && above >= 1 {
        let Some(text) = lines.get(above - 1) else {
            break;
        };
        if !text.trim_start().starts_with("//") {
            break;
        }
        best = marker_on(lines, above, marker);
        above -= 1;
    }
    best
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
pub fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Path shown in findings: relative to the workspace root when possible.
pub fn display_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Crates whose non-test code must be panic-free.
pub const PANIC_SCOPE: &[&str] = &["crates/hash", "crates/pairing", "crates/core"];

/// Crates subject to the constant-time discipline lint.
pub const CT_SCOPE: &[&str] = &["crates/core", "crates/pairing"];

/// Crates covered by the interprocedural call graph (taint and
/// reachability passes).
pub const GRAPH_SCOPE: &[&str] = &["crates/hash", "crates/pairing", "crates/core"];

/// Crates subject to the limb-overflow lint: the multi-precision
/// arithmetic lives in the pairing crate.
pub const OVERFLOW_SCOPE: &[&str] = &["crates/pairing"];

/// Crates covered by the validation-state pass. Wider than
/// [`GRAPH_SCOPE`]: the AODV simulation is where untrusted network
/// bytes enter, so its parsers must be visible as potential sources
/// even though it is not held to the panic/ct discipline.
pub const VALIDATE_SCOPE: &[&str] = &[
    "crates/hash",
    "crates/pairing",
    "crates/core",
    "crates/aodv",
];

/// Crates covered by the asymptotic-complexity certification: the
/// discrete-event simulation and the AODV protocol logic it drives.
pub const COMPLEXITY_SCOPE: &[&str] = &["crates/sim", "crates/aodv"];

/// Reads and parses every `.rs` file in the given scope directories,
/// labelled with workspace-relative paths.
pub fn parse_scope(root: &Path, scope: &[&str]) -> Vec<parser::ParsedFile> {
    let mut sources = Vec::new();
    for rel in scope {
        for file in rust_files(&root.join(rel).join("src")) {
            if let Ok(src) = std::fs::read_to_string(&file) {
                sources.push((display_path(root, &file), src));
            }
        }
    }
    parser::parse_files(&sources)
}

/// Runs all fourteen lints over the workspace rooted at `root`.
pub fn check_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();

    for rel in PANIC_SCOPE {
        for file in rust_files(&root.join(rel).join("src")) {
            if let Ok(src) = std::fs::read_to_string(&file) {
                findings.extend(panic_lint::scan(&display_path(root, &file), &src));
            }
        }
    }
    for rel in CT_SCOPE {
        for file in rust_files(&root.join(rel).join("src")) {
            if let Ok(src) = std::fs::read_to_string(&file) {
                findings.extend(ct_lint::scan(&display_path(root, &file), &src));
            }
        }
    }
    for rel in OVERFLOW_SCOPE {
        for file in rust_files(&root.join(rel).join("src")) {
            if let Ok(src) = std::fs::read_to_string(&file) {
                findings.extend(overflow::scan(&display_path(root, &file), &src));
            }
        }
    }
    let parsed = parse_scope(root, GRAPH_SCOPE);
    findings.extend(taint::analyze(&parsed));
    findings.extend(range::analyze(&parsed));
    findings.extend(reach::analyze(&parsed));
    match std::fs::read_to_string(root.join(opcount::BUDGET_FILE)) {
        Ok(text) => match opcount::parse_budgets(&text) {
            Ok(budgets) => findings.extend(opcount::analyze(&parsed, &budgets)),
            Err(err) => findings.push(Finding {
                file: opcount::BUDGET_FILE.to_owned(),
                line: 1,
                lint: "opcount",
                message: format!("cannot parse budget file: {err}"),
            }),
        },
        Err(_) => findings.push(Finding {
            file: opcount::BUDGET_FILE.to_owned(),
            line: 1,
            lint: "opcount",
            message: format!(
                "`{}` is missing at the workspace root: the Table 1 budgets must be \
                 committed and certified",
                opcount::BUDGET_FILE
            ),
        }),
    }
    findings.extend(concurrency::analyze(&parsed));
    match std::fs::read_to_string(root.join(simd_lint::WHITELIST_FILE)) {
        Ok(text) => match simd_lint::parse_whitelist(&text) {
            Ok(wl) => findings.extend(simd_lint::analyze(&parsed, &wl)),
            Err(err) => findings.push(Finding {
                file: simd_lint::WHITELIST_FILE.to_owned(),
                line: 1,
                lint: "backend",
                message: format!("cannot parse intrinsic whitelist: {err}"),
            }),
        },
        Err(_) => findings.push(Finding {
            file: simd_lint::WHITELIST_FILE.to_owned(),
            line: 1,
            lint: "backend",
            message: format!(
                "`{}` is missing at the workspace root: the island's intrinsic \
                 whitelist must be committed and certified",
                simd_lint::WHITELIST_FILE
            ),
        }),
    }
    findings.extend(secret_lint::analyze(&parsed));
    let sim_parsed = parse_scope(root, COMPLEXITY_SCOPE);
    match std::fs::read_to_string(root.join(complexity::BUDGET_FILE)) {
        Ok(text) => match complexity::parse_budgets(&text) {
            Ok(budgets) => findings.extend(complexity::analyze(&sim_parsed, &budgets)),
            Err(err) => findings.push(Finding {
                file: complexity::BUDGET_FILE.to_owned(),
                line: 1,
                lint: "complexity",
                message: format!("cannot parse budget file: {err}"),
            }),
        },
        Err(_) => findings.push(Finding {
            file: complexity::BUDGET_FILE.to_owned(),
            line: 1,
            lint: "complexity",
            message: format!(
                "`{}` is missing at the workspace root: the hot-path complexity budgets \
                 must be committed and certified",
                complexity::BUDGET_FILE
            ),
        }),
    }
    findings.extend(validate::analyze(&parse_scope(root, VALIDATE_SCOPE)));
    findings.extend(hygiene_lint::scan(root));
    findings.extend(deps_lint::scan(root));

    findings.sort();
    findings
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn suppression_trailing_and_above() {
        let lines = vec![
            "// ct-ok: public data only",
            "if x.is_zero() {",
            "let y = 1; // ct-ok: also fine",
            "// just a comment",
            "// ct-ok:",
            "if secret.is_zero() {",
        ];
        assert_eq!(
            suppression_near(&lines, 2, "ct-ok:"),
            Suppression::Justified
        );
        assert_eq!(
            suppression_near(&lines, 3, "ct-ok:"),
            Suppression::Justified
        );
        assert_eq!(
            suppression_near(&lines, 6, "ct-ok:"),
            Suppression::MissingReason
        );
        assert_eq!(
            suppression_near(&lines, 4, "lint:allow(panic)"),
            Suppression::None
        );
    }

    #[test]
    fn suppression_stops_at_code_lines() {
        let lines = vec!["// ct-ok: reason", "let a = 1;", "if secret > 0 {"];
        assert_eq!(suppression_near(&lines, 3, "ct-ok:"), Suppression::None);
    }

    #[test]
    fn finding_display_format() {
        let f = Finding {
            file: "crates/core/src/mccls.rs".into(),
            line: 12,
            lint: "panic",
            message: "`unwrap()` in non-test code".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/core/src/mccls.rs:12: [panic] `unwrap()` in non-test code"
        );
    }
}
