//! The zero-false-positive contract: the shipped tree passes the gate.
//!
//! If this test fails, either a real violation was introduced (fix it or
//! suppress it with a written justification) or a lint got stricter and
//! now misfires on idiomatic code (fix the lint). Both are release
//! blockers, which is exactly why this runs in `cargo test`.

// Tests may panic freely; that is how they fail.
#![allow(clippy::expect_used)]

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn shipped_tree_is_clean() {
    let findings = mccls_xtask::check_workspace(&workspace_root());
    assert!(
        findings.is_empty(),
        "xtask check found {} violation(s) in the shipped tree:\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fixtures_do_fail_the_gate() {
    // The fixtures exist to prove the lints can fire; if they ever scan
    // clean, the gate has silently gone blind.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let panic_src =
        std::fs::read_to_string(dir.join("panic_cases.rs")).expect("panic fixture exists");
    let ct_src = std::fs::read_to_string(dir.join("ct_cases.rs")).expect("ct fixture exists");
    assert!(!mccls_xtask::panic_lint::scan("panic_cases.rs", &panic_src).is_empty());
    assert!(!mccls_xtask::ct_lint::scan("ct_cases.rs", &ct_src).is_empty());
}

#[test]
fn prepared_pairing_fixture_fails_both_gates() {
    // Violations shaped like the prepared-pairing engine (cached line
    // coefficients, fixed-base table lookups, secret digit recoding)
    // must keep tripping both lints: the engine's hot loops are exactly
    // where a computed index or a secret-dependent branch would sneak in.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let src =
        std::fs::read_to_string(dir.join("prepared_cases.rs")).expect("prepared fixture exists");
    let panic_findings = mccls_xtask::panic_lint::scan("prepared_cases.rs", &src);
    assert!(
        panic_findings.len() >= 3,
        "expected the computed-index/unwrap/expect seeds to fire, got: {panic_findings:?}"
    );
    let ct_findings = mccls_xtask::ct_lint::scan("prepared_cases.rs", &src);
    assert!(
        !ct_findings.is_empty(),
        "expected the secret-digit/blinder branches to fire"
    );
}
