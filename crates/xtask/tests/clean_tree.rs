//! The zero-false-positive contract: the shipped tree passes the gate.
//!
//! If this test fails, either a real violation was introduced (fix it or
//! suppress it with a written justification) or a lint got stricter and
//! now misfires on idiomatic code (fix the lint). Both are release
//! blockers, which is exactly why this runs in `cargo test`.

// Tests may panic freely; that is how they fail.
#![allow(clippy::expect_used)]

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn shipped_tree_is_clean() {
    let findings = mccls_xtask::check_workspace(&workspace_root());
    assert!(
        findings.is_empty(),
        "xtask check found {} violation(s) in the shipped tree:\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fixtures_do_fail_the_gate() {
    // The fixtures exist to prove the lints can fire; if they ever scan
    // clean, the gate has silently gone blind.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let panic_src =
        std::fs::read_to_string(dir.join("panic_cases.rs")).expect("panic fixture exists");
    let ct_src = std::fs::read_to_string(dir.join("ct_cases.rs")).expect("ct fixture exists");
    assert!(!mccls_xtask::panic_lint::scan("panic_cases.rs", &panic_src).is_empty());
    assert!(!mccls_xtask::ct_lint::scan("ct_cases.rs", &ct_src).is_empty());
}

#[test]
fn taint_fixture_trips_only_the_interprocedural_pass() {
    // The dirty chain (extract_share -> fold_exponent -> reduce_window)
    // is locally clean in every function; only the call-graph fixpoint
    // can connect the master secret to the branch two hops away. The
    // `_ct` twins are branch-free and must stay silent.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let src = std::fs::read_to_string(dir.join("taint_cases.rs")).expect("taint fixture exists");
    // Sanity: the function-scoped scan sees nothing, so anything the
    // taint pass reports is genuinely interprocedural.
    assert!(
        mccls_xtask::ct_lint::scan("taint_cases.rs", &src).is_empty(),
        "fixture must be locally clean or the test proves nothing"
    );
    let files = mccls_xtask::parser::parse_files(&[("taint_cases.rs".to_owned(), src)]);
    let findings = mccls_xtask::taint::analyze(&files);
    assert!(
        findings.iter().any(|f| f
            .message
            .contains("branch conditioned on secret-carrying `window`")),
        "expected the two-hop branch leak to fire, got: {findings:?}"
    );
    assert!(
        findings.iter().all(|f| !f.message.contains("_ct")),
        "the constant-time twins must not be flagged: {findings:?}"
    );
}

#[test]
fn reach_fixture_trips_only_the_interprocedural_pass() {
    // `verify` is locally panic-free; the unwrap lives two calls down,
    // so a finding proves the BFS crossed call boundaries. The orphan
    // helper (unreachable) and the justified suppression must stay
    // silent.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let src = std::fs::read_to_string(dir.join("reach_cases.rs")).expect("reach fixture exists");
    let files = mccls_xtask::parser::parse_files(&[("reach_cases.rs".to_owned(), src)]);
    let findings = mccls_xtask::reach::analyze(&files);
    assert!(
        findings.iter().any(|f| f
            .message
            .contains("verify -> decode_point -> normalize_limbs")),
        "expected the two-hop panic chain to fire, got: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .all(|f| !f.message.contains("orphan_helper") && !f.message.contains("check_equation")),
        "unreachable/suppressed panics must not be flagged: {findings:?}"
    );
}

#[test]
fn bare_suppression_reasons_do_not_suppress() {
    // A marker with an empty or whitespace-only reason is itself a
    // finding; only a written justification silences the lints.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let src = std::fs::read_to_string(dir.join("suppression_cases.rs"))
        .expect("suppression fixture exists");
    let ct = mccls_xtask::ct_lint::scan("suppression_cases.rs", &src);
    assert!(
        ct.iter().any(|f| f.message.contains("gives no reason")),
        "bare ct-ok must still be reported: {ct:?}"
    );
    let panics = mccls_xtask::panic_lint::scan("suppression_cases.rs", &src);
    assert!(
        !panics.is_empty(),
        "bare lint:allow(panic) must still be reported"
    );
    // The justified twin's sites are suppressed: every surviving
    // finding points at the bare-marker functions (lines 1-21).
    for f in ct.iter().chain(panics.iter()) {
        assert!(
            f.line <= 21,
            "justified suppression failed to silence line {}: {f:?}",
            f.line
        );
    }
}

#[test]
fn validate_fixture_trips_only_the_typestate_pass() {
    // The dirty chain (admit_peer -> session_pairing) is locally clean
    // in every function: the unchecked decode and the pairing sink live
    // two hops apart, so a finding proves the validation-state fixpoint
    // crossed call boundaries. The sanitized and declassified twins must
    // stay silent, and the bare marker must itself be reported.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let src =
        std::fs::read_to_string(dir.join("validate_cases.rs")).expect("validate fixture exists");
    let files = mccls_xtask::parser::parse_files(&[("validate_cases.rs".to_owned(), src)]);
    let findings = mccls_xtask::validate::analyze(&files);
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("admit_peer -> session_pairing")),
        "expected the two-hop unvalidated-point chain to fire, got: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .all(|f| !f.message.contains("admit_peer_checked")
                && !f.message.contains("admit_trusted")),
        "sanitized/declassified twins must not be flagged: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("gives no reason")),
        "bare `validated:` marker must still be reported: {findings:?}"
    );
}

#[test]
fn overflow_fixture_fires_and_twins_stay_silent() {
    // The bare `+`/`*`/`<<` sites on limb values must fire; the carry
    // intrinsics, `usize` index arithmetic, and the justified
    // suppression must stay silent; the bare marker is itself a finding.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let src =
        std::fs::read_to_string(dir.join("overflow_cases.rs")).expect("overflow fixture exists");
    let findings = mccls_xtask::overflow::scan("overflow_cases.rs", &src);
    for op in ["`+`", "`*`", "`<<`"] {
        assert!(
            findings.iter().any(|f| f.message.contains(op)),
            "expected a bare {op} finding, got: {findings:?}"
        );
    }
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("gives no reason")),
        "bare `overflow-ok:` marker must still be reported: {findings:?}"
    );
    // The clean twins occupy known line ranges: `acc_fold_ct` (27-30),
    // `index_walk` (33-36), and the justified `shift_fold` (39-42).
    for f in &findings {
        assert!(
            !(27..=42).contains(&f.line),
            "a clean twin was flagged at line {}: {f:?}",
            f.line
        );
    }
}

#[test]
fn range_fixture_fires_and_twins_stay_silent() {
    // The overflowing chain, the missing and stale contracts, the
    // undersized `k·p²` offset, and the bare marker must fire; the
    // clean annotated twin and the justified suppression must stay
    // silent. The caps come from the fixture's own `montgomery_field!`
    // invocation, so the test also covers the headroom derivation.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let src = std::fs::read_to_string(dir.join("range_cases.rs")).expect("range fixture exists");
    let files = mccls_xtask::parser::parse_files(&[("range_cases.rs".to_owned(), src)]);
    let findings = mccls_xtask::range::analyze(&files);
    for frag in [
        "exceeding `Fx`'s narrow cap of 8p",
        "declares no `// range:` contract",
        "stale contract on `drifted`",
        "the offset must cover the subtrahend's class",
        "gives no reason",
    ] {
        assert!(
            findings.iter().any(|f| f.message.contains(frag)),
            "expected a finding containing {frag:?}, got: {findings:?}"
        );
    }
    // The clean twin `lazy_mul` (lines 56-61) and the justified
    // `audited` (lines 63-67) must stay silent.
    for f in &findings {
        assert!(
            !(56..=67).contains(&f.line),
            "a clean twin was flagged at line {}: {f:?}",
            f.line
        );
    }
    assert!(
        findings
            .iter()
            .all(|f| !f.message.contains("lazy_mul") && !f.message.contains("audited")),
        "clean twins must not be flagged: {findings:?}"
    );
}

#[test]
fn opcount_fixture_trips_only_the_interprocedural_analysis() {
    // `session_verify` is locally pairing-free: both pairings live one
    // call down in `peer_term`/`message_term`, so an overrun finding
    // proves cost vectors propagated across call edges. The `while`
    // loop in `drain_queue` must read as unbounded, the ghost budget
    // entry as dead, and the exactly-budgeted `cached_verify` twin
    // must stay silent.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let src =
        std::fs::read_to_string(dir.join("opcount_cases.rs")).expect("opcount fixture exists");
    let budgets_text = std::fs::read_to_string(dir.join("opcount_budgets.toml"))
        .expect("opcount fixture budgets exist");
    let budgets = mccls_xtask::opcount::parse_budgets(&budgets_text).expect("fixture toml parses");
    let files = mccls_xtask::parser::parse_files(&[("opcount_cases.rs".to_owned(), src)]);

    // Sanity: the overrun entry point performs no counted operation
    // itself, so anything the analysis charges it is interprocedural.
    let entry = files[0]
        .fns
        .iter()
        .find(|f| f.name == "session_verify")
        .expect("fixture entry point parses");
    assert!(
        entry.calls.iter().all(|c| !c.callee.contains("pair")),
        "fixture entry must be locally pairing-free or the test proves nothing"
    );

    let findings = mccls_xtask::opcount::analyze(&files, &budgets);
    assert!(
        findings.iter().any(|f| f
            .message
            .contains("`session_verify` computes to 2 pairings")
            && f.message
                .contains("exceeding budget `fixture.session_verify`")),
        "expected the interprocedural overrun to fire, got: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("`drain_queue`")
                && f.message.contains("statically unbounded")),
        "expected the while-loop pairing to read as unbounded, got: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("dead budget entry `fixture.ghost`")),
        "expected the ghost entry to be reported dead, got: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .all(|f| !f.message.contains("cached_verify")),
        "the exactly-budgeted twin must stay silent: {findings:?}"
    );
}

#[test]
fn secret_fixture_fires_and_twins_stay_silent() {
    // Derived Debug/Clone on the master secret, the transitive
    // secret-field container, the missing zeroizing Drop, and the bare
    // marker must all fire; the zeroizing seed twin and the justified
    // suppression must stay silent.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let src = std::fs::read_to_string(dir.join("secret_cases.rs")).expect("secret fixture exists");
    let files = mccls_xtask::parser::parse_files(&[("secret_cases.rs".to_owned(), src)]);
    let findings = mccls_xtask::secret_lint::analyze(&files);
    for frag in [
        "`MasterSecret` is key material but derives `Debug`",
        "`MasterSecret` is key material but derives `Clone`",
        "no zeroizing `Drop` impl",
        "`KeyVault` holds a secret-typed field but derives `Clone`",
        "no justification",
    ] {
        assert!(
            findings.iter().any(|f| f.message.contains(frag)),
            "expected a finding containing {frag:?}, got: {findings:?}"
        );
    }
    assert!(
        findings
            .iter()
            .all(|f| !f.message.contains("PartialPrivateKey")
                && !f.message.contains("RotationSnapshot")),
        "clean/suppressed twins must not be flagged: {findings:?}"
    );
}

#[test]
fn complexity_fixture_trips_only_the_interprocedural_analysis() {
    // `flood_rreq` is locally loop-free: the quadratic scan lives one
    // call down, so an overrun finding proves classes composed across
    // call edges. The recursion must saturate to unbounded, the drifted
    // contract and bare suppression must fire, the ghost entry must be
    // dead, and the exactly-budgeted / justified twins must stay silent.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let src = std::fs::read_to_string(dir.join("complexity_cases.rs"))
        .expect("complexity fixture exists");
    let budgets_text = std::fs::read_to_string(dir.join("complexity_budgets.toml"))
        .expect("complexity fixture budgets exist");
    let budgets =
        mccls_xtask::complexity::parse_budgets(&budgets_text).expect("fixture toml parses");
    let files = mccls_xtask::parser::parse_files(&[("complexity_cases.rs".to_owned(), src)]);

    // Sanity: the overrun entry point has no loop of its own, so the
    // `nodes^2` it is charged is genuinely interprocedural.
    let entry = files[0]
        .fns
        .iter()
        .find(|f| f.name == "flood_rreq")
        .expect("fixture entry point parses");
    assert!(
        !entry.body.contains("for "),
        "fixture entry must be locally loop-free or the test proves nothing"
    );

    let findings = mccls_xtask::complexity::analyze(&files, &budgets);
    for frag in [
        "`flood_rreq` computes to nodes^2, exceeding its budget `fixture.flood`",
        "`retry_send` has no static complexity bound",
        "stale contract: `drifted_walk`",
        "gives no reason",
        "dead budget entry `fixture.ghost`",
    ] {
        assert!(
            findings.iter().any(|f| f.message.contains(frag)),
            "expected a finding containing {frag:?}, got: {findings:?}"
        );
    }
    for quiet in ["relay_frame", "checksum"] {
        assert!(
            findings.iter().all(|f| !f.message.contains(quiet)),
            "clean twin `{quiet}` was flagged: {findings:?}"
        );
    }
}

#[test]
fn removing_the_grid_suppression_fails_the_complexity_gate() {
    // `Network::neighbors_of` keeps a linear-scan ablation branch that
    // is legal only under its reviewed suppression. Strip that one
    // comment and re-run the committed budgets: the gate must report
    // the node-bound path, proving that deleting the spatial grid (or
    // routing queries through the linear scan) cannot land silently.
    let root = workspace_root();
    let mut stripped = false;
    let mut sources = Vec::new();
    for rel in mccls_xtask::COMPLEXITY_SCOPE {
        for file in mccls_xtask::rust_files(&root.join(rel).join("src")) {
            let mut src = std::fs::read_to_string(&file).expect("source file reads");
            let path = mccls_xtask::display_path(&root, &file);
            if path.ends_with("network/core.rs") {
                let before = src.lines().count();
                src = src
                    .lines()
                    .filter(|l| !l.contains("complexity-ok: bench-only ablation path"))
                    .collect::<Vec<_>>()
                    .join("\n");
                assert_eq!(
                    src.lines().count() + 1,
                    before,
                    "the ablation suppression moved; update this test"
                );
                stripped = true;
            }
            sources.push((path, src));
        }
    }
    assert!(
        stripped,
        "network/core.rs not found in the complexity scope"
    );
    let budgets_text = std::fs::read_to_string(root.join(mccls_xtask::complexity::BUDGET_FILE))
        .expect("committed complexity budgets exist");
    let budgets =
        mccls_xtask::complexity::parse_budgets(&budgets_text).expect("committed budgets parse");
    let files = mccls_xtask::parser::parse_files(&sources);
    let findings = mccls_xtask::complexity::analyze(&files, &budgets);
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("`Network::neighbors_of`")
                && f.message.contains("exceeding its budget")),
        "expected the unsuppressed linear scan to overrun `neighbors_of`, got: {findings:?}"
    );
}

#[test]
fn committed_baseline_matches_the_tree() {
    // CI diffs `xtask check` against the committed baseline; a baseline
    // that drifts from the tree would let new findings ride in under
    // stale entries. Keep them in lockstep.
    let root = workspace_root();
    let findings = mccls_xtask::check_workspace(&root);
    let text = std::fs::read_to_string(root.join("xtask-baseline.json"))
        .expect("xtask-baseline.json is committed at the workspace root");
    let accepted = mccls_xtask::baseline::parse_ids(&text);
    let diff = mccls_xtask::baseline::diff(&findings, &accepted);
    assert!(
        diff.new.is_empty() && diff.stale.is_empty(),
        "baseline out of sync (run `cargo run -p mccls-xtask -- check --update-baseline`): \
         new={:?} stale={:?}",
        diff.new,
        diff.stale
    );
}

#[test]
fn prepared_pairing_fixture_fails_both_gates() {
    // Violations shaped like the prepared-pairing engine (cached line
    // coefficients, fixed-base table lookups, secret digit recoding)
    // must keep tripping both lints: the engine's hot loops are exactly
    // where a computed index or a secret-dependent branch would sneak in.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let src =
        std::fs::read_to_string(dir.join("prepared_cases.rs")).expect("prepared fixture exists");
    let panic_findings = mccls_xtask::panic_lint::scan("prepared_cases.rs", &src);
    assert!(
        panic_findings.len() >= 3,
        "expected the computed-index/unwrap/expect seeds to fire, got: {panic_findings:?}"
    );
    let ct_findings = mccls_xtask::ct_lint::scan("prepared_cases.rs", &src);
    assert!(
        !ct_findings.is_empty(),
        "expected the secret-digit/blinder branches to fire"
    );
}

#[test]
fn simd_fixture_fires_every_backend_class_and_twins_stay_silent() {
    // One seed per analysis class — a bare `unsafe-ok:` marker, an
    // arch-gated kernel with no scalar twin, movemask/branch-on-lane
    // control flow, and an over-cap `// range:` contract — each beside
    // a clean twin. Runs against the *committed* whitelist, so the test
    // also proves `simd-intrinsics.toml` stays tight enough to reject
    // the movemask family.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let src = std::fs::read_to_string(dir.join("simd_cases.rs")).expect("simd fixture exists");
    let wl_text = std::fs::read_to_string(workspace_root().join("simd-intrinsics.toml"))
        .expect("committed whitelist exists");
    let wl = mccls_xtask::simd_lint::parse_whitelist(&wl_text).expect("committed whitelist parses");
    let debug_line = src
        .lines()
        .position(|l| l.contains("debug_assert!"))
        .expect("fixture keeps its debug_assert twin")
        + 1;
    // Contract entries only count when called from outside the island;
    // the caps come from a `montgomery_field!` in scope (BLS12-381 Fp,
    // three headroom bits -> 8p narrow / 64p² wide).
    let caller = "montgomery_field!(Fp, 6, [0xb9fe_ffff_ffff_aaab, 0x1eab_fffe_b153_ffff, \
                  0x6730_d2a0_f6b0_f624, 0x6477_4b84_f385_12bf, 0x4b1b_a7b6_434b_acd7, \
                  0x1a01_11ea_397f_e69a]);\n\
                  fn outside() {\n    let _ = hot_entry(&[0u64; 6]);\n    \
                  let _ = cool_entry(&[0u64; 6]);\n}\n";
    let files = mccls_xtask::parser::parse_files(&[
        ("crates/pairing/src/simd/simd_cases.rs".to_owned(), src),
        ("crates/pairing/src/fp.rs".to_owned(), caller.to_owned()),
    ]);
    let findings = mccls_xtask::simd_lint::analyze(&files, &wl);
    for frag in [
        "bare markers are rejected",
        "no scalar twin",
        "mask extraction",
        "branch condition reads a vector lane",
        "exceeds `Fp`'s headroom caps",
        "not on the `[x86_64]` whitelist",
    ] {
        assert!(
            findings.iter().any(|f| f.message.contains(frag)),
            "expected a finding containing {frag:?}, got: {findings:?}"
        );
    }
    for quiet in ["reasoned_dispatch", "mirrored_kernel", "cool_entry"] {
        assert!(
            findings.iter().all(|f| !f.message.contains(quiet)),
            "clean twin `{quiet}` was flagged: {findings:?}"
        );
    }
    assert!(
        findings
            .iter()
            .all(|f| !(f.file.ends_with("simd_cases.rs") && f.line == debug_line)),
        "the debug_assert twin was flagged: {findings:?}"
    );
}

#[test]
fn concurrency_fixture_fires_all_four_analyses_and_twins_stay_silent() {
    // One fixture registry seeds every class of concurrency hazard the
    // lint certifies against: lock-order cycles (same-class nesting on
    // a shard array plus an interprocedural opposite-order pair), a
    // pairing paid under a write guard, Send/Sync boundary breaks, and
    // guard-extension hazards. Each dirty case has a clean or justified
    // twin that must not be flagged.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let src = std::fs::read_to_string(dir.join("concurrency_cases.rs"))
        .expect("concurrency fixture exists");
    let files = mccls_xtask::parser::parse_files(&[("concurrency_cases.rs".to_owned(), src)]);
    let findings = mccls_xtask::concurrency::analyze_with_roots(&files, &["FixtureRegistry"]);

    let expect = |fragment: &str| {
        assert!(
            findings.iter().any(|f| f.message.contains(fragment)),
            "expected a finding containing `{fragment}`, got: {findings:?}"
        );
    };
    // (a) deadlock detection: the same-class shard nesting and the
    // journal/banks opposite-order pair both close cycles.
    expect("lock-order cycle");
    expect("shards[]");
    // (b) hold-across-expensive-op: the pairing under the `pairs` guard.
    expect("held across");
    // (c) Send/Sync boundary audit.
    expect("unsafe impl Sync");
    expect("static mut");
    expect("interior-mutability");
    // (d) guard-extension hazards.
    expect("bound to `_`");
    expect("returns a");
    expect("stores a");
    // A bare `// lock-ok:` is itself a violation and does not waive
    // the gate_a/gate_b cycle it decorates.
    expect("gives no reason");

    // Twins: the precompute-first path, the named guard, the justified
    // epoch ordering, the atomic counter, and the unreachable RefCell
    // scratch pad are all clean.
    for quiet in [
        "admit_fast",
        "drain_freelist",
        "epoch_a",
        "epoch_b",
        "AtomicU64",
        "ScratchPad",
    ] {
        assert!(
            findings.iter().all(|f| !f.message.contains(quiet)),
            "clean twin `{quiet}` was flagged: {findings:?}"
        );
    }
    assert_eq!(
        findings.len(),
        11,
        "exact finding set drifted: {findings:?}"
    );
}
