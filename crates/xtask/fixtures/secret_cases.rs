//! Secret-lifecycle fixtures: derive and drop hazards on key material,
//! plus clean and suppressed twins. Never compiled — parsed by
//! `tests/clean_tree.rs`.

/// DIRTY seed: derived `Debug` and `Clone` leak and scatter the master
/// secret, and there is no zeroizing `Drop` — three findings.
#[derive(Debug, Clone)]
pub struct MasterSecret {
    s: Fr,
}

/// DIRTY transitively: not key material itself, but its field is, so
/// the derived `Clone` silently duplicates the master secret.
#[derive(Clone)]
pub struct KeyVault {
    label: String,
    master: MasterSecret,
}

/// DIRTY marker: the suppression has no written reason, so the derive
/// still counts and the bare marker is called out.
// secret-ok:
#[derive(Debug)]
pub struct EscrowRecord {
    master: MasterSecret,
}

/// CLEAN seed twin: no forbidden derives, redacted manual `Debug`, and
/// a zeroizing `Drop` — silent.
pub struct PartialPrivateKey {
    d: G1Projective,
}

impl core::fmt::Debug for PartialPrivateKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("PartialPrivateKey(<redacted>)")
    }
}

impl Drop for PartialPrivateKey {
    fn drop(&mut self) {
        self.d.zeroize();
    }
}

/// CLEAN suppressed twin: the derive is deliberate and justified.
// secret-ok: snapshot type for the KGC rotation test-vector generator
#[derive(Clone)]
pub struct RotationSnapshot {
    master: MasterSecret,
}
