//! Seeded violations for the limb-overflow lint.
//!
//! Not compiled — scanned by `overflow::scan` in the gate tests. The
//! bare `+`/`*`/`<<` sites on limb values must fire; the `_ct` twin
//! (carries through the approved intrinsics), the `usize` index
//! arithmetic, and the justified suppression must stay silent; the bare
//! `overflow-ok:` marker must itself be reported.

/// Bare add on two limbs: silently wraps on full-width operands.
fn acc_fold(a: u64, b: u64) -> u64 {
    a + b
}

/// Propagation through a binding: `hi` inherits limb-ness from `t`.
fn carry_chain(t: &[u64; 4]) -> u64 {
    let hi = t[3];
    hi << 1
}

/// Bare multiply reached through widening casts.
fn widening(a: u32, b: u32) -> u128 {
    (a as u128) * (b as u128)
}

/// Clean twin: the same fold with the carry made explicit. Must not be
/// flagged.
fn acc_fold_ct(a: u64, b: u64) -> u64 {
    let (v, c) = adc(a, b, 0);
    v.wrapping_add(c)
}

/// Clean: `usize` index arithmetic never involves a limb operand.
fn index_walk(limbs: &[u64]) -> usize {
    let n = limbs.len();
    n + 1
}

/// Justified suppression: a reviewed shift fold. Must not be flagged.
fn shift_fold(hi: u64) -> u64 {
    // overflow-ok: the shifted-out bits are consumed by the next limb
    hi << 63
}

/// Bare suppression: gives no reason, so the site is still reported.
fn sloppy_fold(hi: u64) -> u64 {
    // overflow-ok:
    hi << 63
}
