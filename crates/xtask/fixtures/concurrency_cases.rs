//! Concurrency-discipline fixtures: lock-order cycles, pairing work
//! under guards, Send/Sync boundary hazards, and guard-extension
//! hazards, each with a clean (or justified) twin. Never compiled —
//! parsed by `tests/clean_tree.rs` and fed to
//! `mccls_xtask::concurrency::analyze_with_roots` with
//! `FixtureRegistry` as the Send/Sync reachability root.
//!
//! Every case uses its own lock field names so the inferred lock
//! classes stay disjoint: a cycle seeded by one dirty case must not
//! bleed into another case's acquisition order.

/// The shared-state root for the Send/Sync audit. Its fields name the
/// structs the reachability closure must visit.
pub struct FixtureRegistry {
    shards: Vec<RwLock<Bank>>,
    journal: Mutex<Journal>,
    banks: Mutex<Bank>,
    pairs: RwLock<PairTable>,
    freelist: Mutex<FreeList>,
    epoch_a: Mutex<Epoch>,
    epoch_b: Mutex<Epoch>,
    gate_a: Mutex<Epoch>,
    gate_b: Mutex<Epoch>,
    stats: Stats,
    totals: CleanStats,
}

pub struct Bank {
    entries: Vec<u64>,
}

pub struct Journal {
    records: Vec<u64>,
}

pub struct PairTable {
    cached: Vec<Gt>,
}

pub struct FreeList {
    slots: Vec<usize>,
}

pub struct Epoch {
    counter: u64,
}

/// DIRTY: an interior-mutability cell on state reachable from the
/// registry root (via the `stats` field) — unsynchronized under `&self`
/// sharing.
pub struct Stats {
    hits: Cell<u64>,
}

/// CLEAN twin: atomics are the sanctioned way to count under a shared
/// reference; the audit must stay silent.
pub struct CleanStats {
    hits: AtomicU64,
}

/// CLEAN twin: a `RefCell` that is *not* reachable from the registry
/// root — thread-local scratch state is fine.
pub struct ScratchPad {
    buf: RefCell<Vec<u8>>,
}

/// DIRTY: hand-written thread-safety assertion on the root.
unsafe impl Sync for FixtureRegistry {}

/// DIRTY: unsynchronized global state.
static mut GLOBAL_EPOCH: u64 = 0;

impl FixtureRegistry {
    /// DIRTY: holds one shard's write guard while acquiring a second
    /// shard of the same lock array — the self-nesting that deadlocks
    /// the moment two threads rebalance opposite pairs.
    pub fn rebalance(&self, from: usize, to: usize) {
        let mut src = self.shards[from].write();
        let mut dst = self.shards[to].write();
        src.drain_into(&mut dst);
    }

    /// DIRTY (with `flush_banks`/`rotate`/`append_journal`): takes
    /// `journal` then `banks`…
    pub fn checkpoint(&self) {
        let j = self.journal.lock();
        self.flush_banks();
        j.seal();
    }

    fn flush_banks(&self) {
        let b = self.banks.lock();
        b.touch();
    }

    /// …while this path takes `banks` then `journal`: an
    /// interprocedural opposite-order cycle.
    pub fn rotate(&self) {
        let b = self.banks.lock();
        self.append_journal();
        b.touch();
    }

    fn append_journal(&self) {
        let j = self.journal.lock();
        j.seal();
    }

    /// DIRTY: the Miller loop and final exponentiation behind
    /// `ops::pair` run while the `pairs` write guard is held, starving
    /// every reader for a multi-millisecond critical section.
    pub fn admit_slow(&self, q: &G1Affine, p: &G2Affine) {
        let mut table = self.pairs.write();
        table.put(ops::pair(q, p));
    }

    /// CLEAN twin: pay the pairing first, then take the guard only to
    /// store the 16-limb result.
    pub fn admit_fast(&self, q: &G1Affine, p: &G2Affine) {
        let gt = ops::pair(q, p);
        let mut table = self.pairs.write();
        table.put(gt);
    }

    /// DIRTY: `let _ =` drops the guard on the same line — the
    /// critical section it pretends to protect runs unlocked.
    pub fn reset_freelist(&self) {
        let _ = self.freelist.lock();
        self.clear_slots();
    }

    /// CLEAN twin: a named guard lives to the end of the block.
    pub fn drain_freelist(&self) {
        let _guard = self.freelist.lock();
        self.clear_slots();
    }

    fn clear_slots(&self) {}

    /// DIRTY: returns the guard, extending the critical section into
    /// every caller the analysis cannot see.
    pub fn locked_bank(&self) -> MutexGuard<'_, Bank> {
        self.banks.lock()
    }

    /// CLEAN (suppressed) twin of an order edge: `epoch_b` nests under
    /// `epoch_a` here, and the reverse order below would close a cycle
    /// — but the edge carries a reviewed justification.
    pub fn forward(&self) {
        let a = self.epoch_a.lock();
        // lock-ok: epoch_b is only ever taken inside epoch_a on the forward path; backward drops epoch_b before retake (reviewed)
        let b = self.epoch_b.lock();
        a.tick(&b);
    }

    pub fn backward(&self) {
        let b = self.epoch_b.lock();
        let a = self.epoch_a.lock();
        a.tick(&b);
    }

    /// DIRTY marker: a bare `// lock-ok:` gives no reason, so the edge
    /// still counts *and* the empty waiver is itself reported.
    pub fn gate_up(&self) {
        let a = self.gate_a.lock();
        // lock-ok:
        let b = self.gate_b.lock();
        a.tick(&b);
    }

    pub fn gate_down(&self) {
        let b = self.gate_b.lock();
        let a = self.gate_a.lock();
        a.tick(&b);
    }
}

/// DIRTY: storing a guard in a struct outlives any lexical critical
/// section.
pub struct BankHandle<'a> {
    guard: MutexGuard<'a, Bank>,
}
