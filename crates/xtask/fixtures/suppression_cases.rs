//! Regression fixture for the suppression-reason policy. NOT compiled —
//! parsed as text by the gate tests.
//!
//! A suppression marker with an empty or whitespace-only reason must
//! NOT silence the lint: the whole point of the marker is the written
//! justification. Every seeded site below carries a bare marker and
//! must still be reported; the CLEAN twins carry real reasons.

fn bare_ct_marker(keys: &KeyPair) -> Fr {
    let x = keys.secret.double();
    // ct-ok:
    if x.is_small() {
        // finding: empty reason does not suppress
        return Fr::one();
    }
    x
}

fn whitespace_panic_marker(limbs: &[u64]) -> u64 {
    // lint:allow(panic)
    *limbs.first().unwrap() // finding: whitespace-only reason does not suppress
}

fn justified_twin(keys: &KeyPair, limbs: &[u64]) -> u64 {
    let x = keys.secret.double();
    // ct-ok: the discarded candidate leaks nothing about the kept key
    if x.is_small() {
        // CLEAN: justified
        return 0;
    }
    // lint:allow(panic) limbs is non-empty by construction
    *limbs.first().unwrap() // CLEAN: justified
}
