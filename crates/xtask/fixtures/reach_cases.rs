//! Seeded panic-reachability violations. NOT compiled — parsed as text
//! by the gate tests to prove `reach::analyze` still connects a panic
//! site to the public API across call boundaries.
//!
//! `verify` is locally panic-free; the `unwrap` lives two calls down in
//! `normalize_limbs`, so only the interprocedural BFS can report it as
//! API-reachable. The CLEAN twins must never produce a `reach` finding:
//! one panic is unreachable from any API root, the other carries a
//! justified suppression. (The local panic lint would still flag both
//! twins' panic sites — the gate test exercises only the reach pass.)

/// API root, locally clean: no panic in this body.
fn verify(sig: &Signature, msg: &[u8]) -> bool {
    let point = decode_point(&sig.r);
    point.on_curve() && check_equation(&point, msg)
}

/// Middle hop, also locally clean.
fn decode_point(bytes: &[u8; 96]) -> G1 {
    let limbs = normalize_limbs(bytes);
    G1::from_limbs(&limbs)
}

/// The leaf: reachable from `verify` only through `decode_point`.
fn normalize_limbs(bytes: &[u8; 96]) -> [u64; 6] {
    let first = bytes.chunks(8).next().unwrap(); // finding: unwrap reachable from verify
    [first[0] as u64, 0, 0, 0, 0, 0]
}

/// CLEAN: identical panic, but nothing on an API-root path calls this,
/// so the reach pass stays silent about it.
fn orphan_helper(bytes: &[u8]) -> u64 {
    let first = bytes.first().unwrap();
    u64::from(*first)
}

/// CLEAN: on the API path, but the panic site carries a justified
/// suppression, which the reach pass honours.
fn check_equation(point: &G1, msg: &[u8]) -> bool {
    // lint:allow(panic) msg is non-empty: verify rejects empty messages first
    let lead = msg.first().expect("non-empty message");
    point.pair_check(*lead)
}
