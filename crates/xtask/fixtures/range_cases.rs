//! Seeded violations for the magnitude-range certification lint.
//!
//! Not compiled — parsed and analyzed by `range::analyze` in the gate
//! tests. The overflowing chain, the missing and stale contracts, the
//! undersized `k·p²` offset, and the bare `range-ok:` marker must
//! fire; the clean annotated twin and the justified suppression must
//! stay silent.

// The BLS12-381 base field: 381 bits over six limbs leaves three
// headroom bits, so the caps are 8p (narrow) and 64p² (wide).
montgomery_field!(
    Fx,
    6,
    [
        0xb9fe_ffff_ffff_aaab,
        0x1eab_fffe_b153_ffff,
        0x6730_d2a0_f6b0_f624,
        0x6477_4b84_f385_12bf,
        0x4b1b_a7b6_434b_acd7,
        0x1a01_11ea_397f_e69a,
    ]
);

impl Fx {
    /// Overflowing chain: four doublings reach class `<16p`, twice the
    /// narrow cap. Declared canonical, so the lint must flag the jump.
    // range: <p
    pub fn runaway(&self, other: &Self) -> Self {
        let a = self.add_unreduced(other);
        let b = a.add_unreduced(&a);
        let c = b.add_unreduced(&b);
        let d = c.add_unreduced(&c);
        d.reduce()
    }

    /// Missing contract: touches a lazy primitive with no `// range:`.
    pub fn uncertified(&self, other: &Self) -> Self {
        self.add_unreduced(other).reduce()
    }

    /// Stale contract: the body computes `<2p`, not the declared `<3p`.
    // range: <p -> <3p
    pub fn drifted(&self, other: &Self) -> Self {
        self.add_unreduced(other)
    }

    /// Undersized offset: the subtrahend has class `<4pp` but the
    /// `k·p²` offset only covers `2p²`.
    // range: <2p -> <8pp
    pub fn shaved(&self, other: &Self) -> FxWide {
        let minuend = self.mul_unreduced(other);
        let subtrahend = self.mul_unreduced(other);
        minuend.wide_sub_offset(&subtrahend, 2)
    }

    /// Clean twin: the certified lazy product. Must not be flagged.
    // range: <p
    pub fn lazy_mul(&self, other: &Self) -> Self {
        let wide = self.mul_unreduced(other);
        wide.montgomery_reduce()
    }

    /// Justified suppression: a reviewed chain. Must not be flagged.
    pub fn audited(&self, other: &Self) -> Self {
        // range-ok: the chain peaks at class 2p, reviewed in DESIGN.md §11
        self.add_unreduced(other).reduce()
    }

    /// Bare suppression: gives no reason, so the site is still reported.
    pub fn waved(&self, other: &Self) -> Self {
        // range-ok:
        self.add_unreduced(other).reduce()
    }
}
