//! Seeded violations for the `backend` lint: one finding per analysis
//! class, each beside a clean twin that must stay silent. The test in
//! `clean_tree.rs` parses this file under an island path
//! (`crates/pairing/src/simd/`) against the *committed*
//! `simd-intrinsics.toml`, with a small out-of-island caller so the
//! contract entry points are live. Never compiled — text for the lint.

// --- class 1: unsafe containment ------------------------------------

/// Dirty: the marker is bare, so it suppresses nothing.
fn bare_marker_dispatch(a: &[u64; 6]) -> [u64; 6] {
    // unsafe-ok:
    unsafe { raw_kernel(a) }
}

/// Clean twin: the same shape with a written reason is silent.
fn reasoned_dispatch(a: &[u64; 6]) -> [u64; 6] {
    // unsafe-ok: feature detection established avx2 before this call
    unsafe { raw_kernel(a) }
}

// --- class 2: cfg-dispatch parity -----------------------------------

/// Dirty: arch-gated with no non-gated island twin to fall back to.
#[target_feature(enable = "avx2")]
pub(crate) fn orphan_kernel(a: &[u64; 6]) -> [u64; 6] {
    *a
}

/// Clean twin pair: gated kernel and scalar mirror agree on the
/// signature (in the shipped island the mirror lives in `scalar.rs`;
/// the lint keys twins by name + signature, not by file).
#[target_feature(enable = "avx2")]
pub(crate) fn mirrored_kernel(a: &[u64; 6]) -> [u64; 6] {
    *a
}

pub(crate) fn mirrored_kernel(a: &[u64; 6]) -> [u64; 6] {
    *a
}

// --- class 3: lane constant-time -------------------------------------

/// Dirty: collapses lanes into a branchable mask. `movemask` is also
/// deliberately off the committed whitelist, so the containment pass
/// flags the intrinsic itself as a second, unsuppressable finding.
fn leaky_compare(v: __m256i) -> i32 {
    _mm256_movemask_epi8(v)
}

/// Dirty: a lane extraction steering control flow.
fn leaky_early_exit(v: __m256i) -> bool {
    if _mm256_extract_epi64::<0>(v) == 0 {
        return true;
    }
    false
}

/// Clean twin: per-lane sanity checks compile out of release builds,
/// and straight-line result extraction is exactly what lanes are for.
fn checked_extract(v: __m256i) -> u64 {
    debug_assert!(_mm256_extract_epi64::<3>(v) == 0);
    _mm256_extract_epi64::<0>(v) as u64
}

// --- class 4: packed magnitude contracts -----------------------------

/// Dirty: the declared classes blow `Fp`'s 8p/64p² headroom caps.
// range: <16p -> <512pp
pub(crate) fn hot_entry(a: &[u64; 6]) -> ([u64; 6], [u64; 6]) {
    (*a, *a)
}

/// Clean twin: packed lanes commit to the same caps as the scalar path.
// range: <8p -> <64pp
pub(crate) fn cool_entry(a: &[u64; 6]) -> ([u64; 6], [u64; 6]) {
    (*a, *a)
}
