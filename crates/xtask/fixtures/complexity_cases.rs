//! Seed violations for the asymptotic-complexity lint. Every class the
//! analysis certifies against appears once, each beside a clean twin
//! that must stay silent. This file is NOT compiled — it exists so the
//! fixture test can prove the lint still fires.

// The budgeted entry point is locally loop-free: the quadratic scan
// lives one call down, so an overrun finding proves classes composed
// bottom-up across call edges.
// complexity: neighbors
fn flood_rreq(all_nodes: &[u32]) -> u32 {
    scan_all_pairs(all_nodes)
}

// The node-quadratic helper a naive neighbor discovery would hide in.
fn scan_all_pairs(all_nodes: &[u32]) -> u32 {
    let mut acc = 0;
    for a in all_nodes {
        for b in all_nodes {
            acc += a ^ b;
        }
    }
    acc
}

// A contract that drifted: the comment promises `log` but the body
// scans the whole node table.
// complexity: log
fn drifted_walk(all_nodes: &[u32]) -> u32 {
    let mut acc = 0;
    for n in all_nodes {
        acc ^= n;
    }
    acc
}

// Mutual recursion has no static bound; the budget demands `const`, so
// the saturated class must be reported as unbounded.
// complexity: const
fn retry_send(budget_left: u32) -> u32 {
    if budget_left == 0 {
        0
    } else {
        retry_ack(budget_left - 1)
    }
}

fn retry_ack(x: u32) -> u32 {
    retry_send(x)
}

// A suppression with no written reason is itself a finding and does
// not downgrade the loop it decorates.
fn tally(xs: &[u32]) -> u32 {
    let mut acc = 0;
    // complexity-ok:
    for x in xs {
        acc += x;
    }
    acc
}

// Clean twin: exactly on budget, marker agrees, must stay silent.
// complexity: neighbors
fn relay_frame(neighbors: &[u32]) -> u32 {
    let mut acc = 0;
    for n in neighbors {
        acc ^= n;
    }
    acc
}

// Clean twin: the loop is justified away, so the `const` contract
// holds and nothing fires.
// complexity: const
fn checksum(xs: &[u32]) -> u32 {
    let mut acc = 0u32;
    // complexity-ok: fixed 8-word header checksum, length pinned by the wire format
    for x in xs {
        acc = acc.wrapping_add(*x);
    }
    acc
}
