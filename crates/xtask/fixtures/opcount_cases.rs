//! Operation-count fixtures: shapes the opcount certification must
//! catch, plus clean twins it must leave alone. Never compiled —
//! parsed by `tests/clean_tree.rs` against `opcount_budgets.toml` in
//! this directory.

/// DIRTY, interprocedurally: locally pairing-free — both pairings live
/// one call down, so an overrun finding proves the analysis crossed
/// call boundaries. Budgeted at 1 pairing, computes to 2.
// opcount-budget: fixture.session_verify
pub fn session_verify(state: &Session, msg: &[u8]) -> bool {
    let lhs = peer_term(state);
    let rhs = message_term(state, msg);
    lhs == rhs
}

fn peer_term(state: &Session) -> Gt {
    ops::pair(&state.q_id, &state.p_pub)
}

fn message_term(state: &Session, msg: &[u8]) -> Gt {
    let h = state.challenge(msg);
    ops::pair(&h, &state.r)
}

/// DIRTY: a pairing under a `while` loop has no static repetition
/// bound. Budgeted at 1 pairing, computes to unbounded.
// opcount-budget: fixture.drain_queue
pub fn drain_queue(queue: &mut Queue) -> bool {
    let mut ok = true;
    while let Some(item) = queue.pop() {
        ok &= accept(&item);
    }
    ok
}

fn accept(item: &Item) -> bool {
    ops::pair(&item.sig, &item.key).is_identity()
}

/// CLEAN twin: one pairing one hop down, budgeted at exactly 1 —
/// certification holds and the entry stays silent.
// opcount-budget: fixture.cached_verify
pub fn cached_verify(state: &Session, msg: &[u8]) -> bool {
    let expected = message_term(state, msg);
    state.cached == expected
}
