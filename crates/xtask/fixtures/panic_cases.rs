//! Seeded violations for the panic lint. NOT compiled — parsed as text
//! by `panic_lint` unit tests. Lines marked CLEAN must never be flagged.

fn violations(v: &[u8], opt: Option<u8>) -> u8 {
    let a = opt.unwrap(); // finding: unwrap
    let b = opt.expect("present"); // finding: expect
    if v.is_empty() {
        panic!("empty input"); // finding: panic!
    }
    match a {
        0 => unreachable!(), // finding: unreachable!
        _ => {}
    }
    let head = &v[..4]; // finding: range indexing
    let x = v[usize::from(a) + 1]; // finding: computed index
    // lint:allow(panic)
    let y = v[usize::from(b) * 2]; // finding: bare marker, no reason
    x ^ y ^ head[0]
}

fn tolerated(v: &[u8], i: usize) -> u8 {
    let a = v[i]; // CLEAN single-token index
    let b = v[0]; // CLEAN literal index
    // lint:allow(panic) caller guarantees at least one element
    let c = v[i + 1]; // CLEAN justified suppression
    let d = v.first().copied().unwrap_or(0); // CLEAN unwrap_or is fine
    a ^ b ^ c ^ d
}

/// Docs may say `.unwrap()` or even panic! without tripping. // CLEAN
fn strings_and_docs() -> &'static str {
    "call .unwrap() then panic!(now)" // CLEAN string literal
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Vec<u8> = vec![];
        v[10..20].to_vec(); // CLEAN test code is exempt
        panic!("fine in tests"); // CLEAN
    }
}
