//! Seeded violations for the constant-time lint. NOT compiled — parsed
//! as text by `ct_lint` unit tests. Lines marked CLEAN must never be
//! flagged.

fn direct_branch_on_rng_draw(rng: &mut Rng) -> Fr {
    let x = Fr::random(rng);
    if x.is_zero() {
        // finding is reported on the `if` line above
        return Fr::one();
    }
    x
}

fn propagated_taint(keys: &KeyPair, point: &G1) -> G1 {
    let inv = keys.secret.invert_ct();
    let derived = point.mul_scalar(&inv);
    while derived.is_identity() {
        // finding on the `while` line: `derived` carries the secret
        break;
    }
    derived
}

fn variable_time_inverse(keys: &KeyPair) -> Fr {
    let x = keys.secret;
    x.invert() // finding: variable-time invert on a secret
}

fn bare_marker(rng: &mut Rng) -> bool {
    let n = rng.next_u64();
    // ct-ok:
    n > 7 && n < 100 // finding: marker without a reason
}

fn public_control_flow(msg: &[u8]) -> bool {
    let digest = hash(msg); // CLEAN: hashes of public data are public
    if digest.is_empty() {
        return false; // CLEAN
    }
    digest.len() > 16 && msg.len() > 4 // CLEAN
}

fn justified(rng: &mut Rng) -> Fr {
    let candidate = Fr::random(rng);
    // ct-ok: rejection sampling reveals only that a discarded candidate
    // was zero, which happens with probability ~2^-255
    if candidate.is_zero() {
        return Fr::one(); // CLEAN: governed by the justified branch
    }
    candidate
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_branch_on_secrets() {
        let x = keys.secret;
        if x.is_zero() {
            panic!("CLEAN: test code is exempt");
        }
    }
}
