//! Seeded violations shaped like the prepared-pairing engine
//! (`crates/pairing/src/prepared.rs`): line-coefficient caching,
//! fixed-base tables, and digit recoding. NOT compiled — parsed as text
//! by the `clean_tree` gate tests to prove the lints still fire on this
//! idiom. Lines marked CLEAN must never be flagged.

fn miller_loop_over_cached_lines(steps: &[Step], pairs: &[(G1, G2Prepared)]) -> Fp12 {
    let mut f = Fp12::one();
    for (i, step) in steps.iter().enumerate() {
        let line = step.coeffs[i * 2 + 1]; // finding: computed index into the line table
        f = f.mul_by_line(&line);
        let add = step.add.unwrap(); // finding: unwrap on the optional add-step line
        f = f.mul_by_line(&add);
    }
    let head = &pairs[..4]; // finding: range indexing the pair list
    f.mul(&head[0].1.first_line())
}

fn table_lookup(table: &FixedBaseTable, digits: &[i8; 65]) -> G1 {
    let mut acc = G1::identity();
    for (w, &d) in digits.iter().enumerate() {
        let odd = table.windows[w].entries[(d.unsigned_abs() / 2) as usize]; // finding: computed index
        acc = acc.add(&odd);
    }
    let last = table.windows.last().expect("table is never empty"); // finding: expect
    acc.add(&last.entries[0])
}

fn recode_secret_scalar(keys: &KeyPair) -> [i8; 65] {
    let k = keys.secret;
    let mut digits = [0i8; 65];
    let mut carry = 0i16;
    for (w, d) in digits.iter_mut().enumerate() {
        *d = (k.limb(w) as i16 + carry) as i8;
        if *d > 8 {
            // finding: branch on a digit recoded from the secret scalar
            carry = 1;
        }
    }
    digits
}

fn blinded_batch_exponent(rng: &mut Rng) -> Fr {
    let z = Fr::random_nonzero(rng);
    while z.is_small() {
        // finding: loop condition on the random blinder
        break;
    }
    z
}

fn tolerated(table: &FixedBaseTable, w: usize, rng: &mut Rng) -> G1 {
    let window = table.windows[w]; // CLEAN single-token index
    let first = table.windows[0]; // CLEAN literal index
    // lint:allow(panic) WINDOWS is a compile-time constant and w < WINDOWS by construction
    let bounded = table.windows[w + 1]; // CLEAN justified suppression
    let z = Fr::random_nonzero(rng);
    // ct-ok: the blinder is discarded after one multi-Miller-loop batch;
    // revealing whether a discarded candidate was rejected leaks nothing
    if z.is_small() {
        return first.entries[0]; // CLEAN: governed by the justified branch
    }
    window.entries[0].add(&bounded.entries[0])
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_index_and_panic() {
        let steps: Vec<Step> = vec![];
        let _ = steps[10 * 2]; // CLEAN test code is exempt
        panic!("fine in tests"); // CLEAN
    }
}
