//! Seeded violations for the validation-state pass.
//!
//! Not compiled — parsed by `validate::analyze` in the gate tests. The
//! dirty chain (`admit_peer -> session_pairing -> pair`) is locally
//! clean in every function: only the call-graph fixpoint can connect
//! the unchecked decode to the pairing two hops away. The `_checked`
//! and `_trusted` twins must stay silent, and the bare marker in
//! `admit_sloppy` must itself be reported.

/// The unchecked decoder: raw bytes straight into a group type with no
/// curve or subgroup test.
fn decode_peer_key(bytes: &[u8; 96]) -> G2Affine {
    let x = Fp2::from_be_bytes_unreduced(bytes);
    G2Affine::from_x_unchecked(x)
}

/// Locally clean forwarding: the decoded key only reaches a pairing
/// inside the callee, so flagging this chain requires interprocedural
/// propagation.
fn admit_peer(bytes: &[u8; 96]) -> Gt {
    let key = decode_peer_key(bytes);
    session_pairing(&key)
}

fn session_pairing(key: &G2Affine) -> Gt {
    pair(&generator(), key)
}

/// Sanitized twin: same shape, but the subgroup check clears the value
/// before the sink. Must not be flagged.
fn admit_peer_checked(bytes: &[u8; 96]) -> Option<Gt> {
    let key = decode_peer_key(bytes);
    if !key.is_torsion_free() {
        return None;
    }
    Some(pair(&generator(), key))
}

/// Declassified twin: a reviewed marker with a written reason. Must not
/// be flagged.
fn admit_trusted(bytes: &[u8; 96]) -> Gt {
    // validated: bytes come from the local key store, which only ever
    // holds encodings produced by the checked from_compressed path
    let key = decode_peer_key(bytes);
    pair(&generator(), key)
}

/// Bare marker: gives no reason, so it suppresses nothing and is itself
/// a finding.
fn admit_sloppy(bytes: &[u8; 96]) -> Gt {
    // validated:
    let key = decode_peer_key(bytes);
    pair(&generator(), key)
}
