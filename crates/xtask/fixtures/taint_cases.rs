//! Seeded interprocedural taint violations. NOT compiled — parsed as
//! text by the gate tests to prove `taint::analyze` still catches a
//! secret that leaks across call boundaries.
//!
//! The dirty chain below is *invisible* to the function-scoped lint:
//! every individual function is locally clean (no `.secret` text, no
//! taint source in the branching function), so only the call-graph
//! fixpoint can connect the master secret to the branch two hops away.
//! Functions marked CLEAN form the constant-time twin and must never be
//! flagged.

/// Hop 0: the secret enters through a declared-secret parameter type.
/// `exponent` is tainted because its initializer mentions `master`.
fn extract_share(master: &MasterSecret, id: &[u8]) -> Fr {
    let exponent = master.s.mul(&hash_to_fr(id));
    fold_exponent(&exponent)
}

/// Hop 1: an innocently named pass-through. Locally there is nothing
/// secret about `exponent: &Fr`.
fn fold_exponent(exponent: &Fr) -> Fr {
    reduce_window(exponent)
}

/// Hop 2: the leak. `window` arrived tainted through the chain
/// extract_share -> fold_exponent -> reduce_window, and this branch
/// makes the running time depend on it.
fn reduce_window(window: &Fr) -> Fr {
    if window.is_small() {
        // finding: branch on a two-hop-tainted parameter
        return Fr::one();
    }
    window.double()
}

/// CLEAN twin, hop 0: same secret entry, same shape.
fn extract_share_ct(master: &MasterSecret, id: &[u8]) -> Fr {
    let exponent = master.s.mul(&hash_to_fr(id));
    fold_exponent_ct(&exponent)
}

/// CLEAN twin, hop 1.
fn fold_exponent_ct(exponent: &Fr) -> Fr {
    reduce_window_ct(exponent)
}

/// CLEAN twin, hop 2: the fold is branch-free — a ct select instead of
/// an `if`, so the tainted value never steers control flow.
fn reduce_window_ct(window: &Fr) -> Fr {
    let folded = window.double();
    Fr::ct_select(&folded, &Fr::one(), window.is_small_ct())
}
