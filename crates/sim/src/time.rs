//! Virtual simulation time.
//!
//! [`SimTime`] is an absolute instant and [`SimDuration`] a span, both
//! with nanosecond resolution in a `u64` — enough for half a millennium
//! of simulated time while keeping event ordering exact (no floating
//! point drift).

use core::ops::{Add, AddAssign, Sub};

/// An absolute instant of virtual time (nanoseconds since simulation
/// start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Builds from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[allow(clippy::expect_used)] // the panic is this method's documented contract
    pub fn duration_since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier is later than self"),
        )
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds from fractional seconds (rounds to nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// The span in fractional seconds (for reporting).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating scalar multiply.
    pub fn saturating_mul(&self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl core::fmt::Display for SimTime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl core::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 2_500_000_000);
        assert_eq!(
            t.duration_since(SimTime::from_secs(1)).as_nanos(),
            1_500_000_000
        );
        assert_eq!((t - SimTime::from_secs(2)).as_nanos(), 500_000_000);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.25).as_nanos(), 250_000_000);
        assert!((SimDuration::from_micros(1500).as_secs_f64() - 0.0015).abs() < 1e-12);
        assert_eq!(
            SimDuration::from_millis(2).saturating_mul(3).as_nanos(),
            6_000_000
        );
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn duration_since_panics_backwards() {
        SimTime::from_secs(1).duration_since(SimTime::from_secs(2));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }
}
