//! The wireless channel model: unit-disk connectivity, serialization
//! delay from bandwidth, CSMA-style per-receiver jitter, and optional
//! uniform frame loss.
//!
//! This deliberately simple PHY/MAC stands in for QualNet's 802.11
//! model; the figures the paper reports are driven by AODV's
//! route-discovery dynamics, which only need connectivity, delay, and
//! the first-copy-wins race that jitter creates (the lever the rushing
//! attack pulls).

use mccls_rng::Rng;

use crate::mobility::Position;
use crate::time::SimDuration;

/// Radio and MAC parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioConfig {
    /// Reception range (m). 250 m is the classic 802.11 figure QualNet
    /// scenarios use.
    pub range: f64,
    /// Link bandwidth in bits per second (2 Mb/s in the usual setups).
    pub bandwidth_bps: f64,
    /// Upper bound of the uniform per-receiver MAC/forwarding jitter.
    /// AODV mandates jittering broadcasts to avoid synchronized
    /// collisions; the rushing attacker's whole trick is skipping it.
    pub max_jitter: SimDuration,
    /// Probability that an individual frame reception is lost
    /// (collisions/fading, folded into one knob).
    pub loss_rate: f64,
}

impl Default for RadioConfig {
    fn default() -> Self {
        Self {
            range: 250.0,
            bandwidth_bps: 2_000_000.0,
            max_jitter: SimDuration::from_millis(10),
            loss_rate: 0.0,
        }
    }
}

impl RadioConfig {
    /// True when `a` can hear `b`.
    pub fn in_range(&self, a: &Position, b: &Position) -> bool {
        a.distance(b) <= self.range
    }

    /// Serialization (transmission) delay of a frame of `bytes` bytes.
    pub fn tx_delay(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }

    /// Propagation delay over `dist` metres (speed of light).
    pub fn propagation_delay(&self, dist: f64) -> SimDuration {
        SimDuration::from_secs_f64(dist / 299_792_458.0)
    }

    /// A fresh per-receiver jitter sample.
    pub fn sample_jitter(&self, rng: &mut impl Rng) -> SimDuration {
        let max = self.max_jitter.as_nanos();
        if max == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(rng.gen_range(0..max))
        }
    }

    /// Samples whether a frame reception is lost.
    pub fn frame_lost(&self, rng: &mut impl Rng) -> bool {
        self.loss_rate > 0.0 && rng.gen_bool(self.loss_rate.min(1.0))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use mccls_rng::SeedableRng;

    #[test]
    fn range_check() {
        let cfg = RadioConfig::default();
        let a = Position { x: 0.0, y: 0.0 };
        let near = Position { x: 249.0, y: 0.0 };
        let far = Position { x: 251.0, y: 0.0 };
        assert!(cfg.in_range(&a, &near));
        assert!(!cfg.in_range(&a, &far));
    }

    #[test]
    fn tx_delay_scales_with_size() {
        let cfg = RadioConfig::default();
        // 512 bytes at 2 Mb/s = 2.048 ms.
        let d = cfg.tx_delay(512);
        assert!((d.as_secs_f64() - 0.002048).abs() < 1e-9);
        assert_eq!(cfg.tx_delay(1024).as_nanos(), 2 * d.as_nanos());
    }

    #[test]
    fn jitter_is_bounded() {
        let cfg = RadioConfig::default();
        let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let j = cfg.sample_jitter(&mut rng);
            assert!(j < cfg.max_jitter);
        }
    }

    #[test]
    fn zero_jitter_config() {
        let cfg = RadioConfig {
            max_jitter: SimDuration::ZERO,
            ..Default::default()
        };
        let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(2);
        assert_eq!(cfg.sample_jitter(&mut rng), SimDuration::ZERO);
    }

    #[test]
    fn loss_rate_zero_never_loses() {
        let cfg = RadioConfig::default();
        let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(3);
        assert!((0..1000).all(|_| !cfg.frame_lost(&mut rng)));
    }

    #[test]
    fn loss_rate_one_always_loses() {
        let cfg = RadioConfig {
            loss_rate: 1.0,
            ..Default::default()
        };
        let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(4);
        assert!((0..100).all(|_| cfg.frame_lost(&mut rng)));
    }

    #[test]
    fn propagation_delay_is_small() {
        let cfg = RadioConfig::default();
        assert!(cfg.propagation_delay(250.0) < SimDuration::from_micros(2));
    }
}
