//! The discrete-event scheduler: a time-ordered queue of typed events
//! with deterministic FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Min-heap ordering: earliest time first, then insertion order.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// A discrete-event scheduler over events of type `E`.
///
/// Events fire in non-decreasing time order; events scheduled for the
/// same instant fire in the order they were scheduled, so a run is fully
/// deterministic given a deterministic handler and RNG.
///
/// # Examples
///
/// ```
/// use mccls_sim::{Scheduler, SimDuration, SimTime};
///
/// let mut sched = Scheduler::new();
/// sched.schedule_at(SimTime::from_secs(2), "b");
/// sched.schedule_at(SimTime::from_secs(1), "a");
/// let mut seen = Vec::new();
/// while let Some((t, ev)) = sched.pop() {
///     seen.push((t.as_nanos(), ev));
/// }
/// assert_eq!(seen, vec![(1_000_000_000, "a"), (2_000_000_000, "b")]);
/// ```
#[derive(Default)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    processed: u64,
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at `t = 0`.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — a discrete-event simulation must
    /// never rewind.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue went backwards");
        self.now = entry.at;
        self.processed += 1;
        Some((entry.at, entry.event))
    }

    /// Runs `handler` over every event until the queue drains or the
    /// clock passes `until`, whichever comes first. Events scheduled
    /// beyond `until` remain queued.
    pub fn run_until(&mut self, until: SimTime, mut handler: impl FnMut(SimTime, E, &mut Self)) {
        while let Some(entry) = self.heap.peek() {
            if entry.at > until {
                break;
            }
            let Some((t, ev)) = self.pop() else {
                break;
            };
            handler(t, ev, self);
        }
        if self.now < until {
            self.now = until;
        }
    }
}

impl<E> core::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use mccls_rng::{Rng, SeedableRng};

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(3), 3);
        s.schedule_at(SimTime::from_secs(1), 1);
        s.schedule_at(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut s = Scheduler::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            s.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(5), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_events() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(5), ());
        s.pop();
        s.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut s = Scheduler::new();
        for t in 1..=10u64 {
            s.schedule_at(SimTime::from_secs(t), t);
        }
        let mut seen = Vec::new();
        s.run_until(SimTime::from_secs(5), |_, e, _| seen.push(e));
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.now(), SimTime::from_secs(5));
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), 0u64);
        let mut count = 0;
        s.run_until(SimTime::from_secs(100), |_, gen, sched| {
            count += 1;
            if gen < 4 {
                sched.schedule_in(SimDuration::from_secs(1), gen + 1);
            }
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn always_non_decreasing() {
        let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(0x5C4ED);
        for _ in 0..32 {
            let times: Vec<u64> = (0..rng.gen_range(1usize..100))
                .map(|_| rng.gen_range(0u64..1_000_000))
                .collect();
            let mut s = Scheduler::new();
            for &t in &times {
                s.schedule_at(SimTime::from_nanos(t), t);
            }
            let mut last = 0;
            while let Some((t, _)) = s.pop() {
                assert!(t.as_nanos() >= last);
                last = t.as_nanos();
            }
            assert_eq!(s.processed(), times.len() as u64);
        }
    }
}
