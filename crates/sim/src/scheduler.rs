//! The discrete-event scheduler: a time-ordered queue of typed events
//! with deterministic FIFO tie-breaking.
//!
//! Implemented as a calendar queue (Brown 1988): pending events hash
//! into an array of day buckets by `timestamp / width`, the dequeue
//! scans forward from the current day, and the bucket array is resized
//! whenever the population outgrows or undershoots it — or when an
//! insert finds a day piled past [`OVERFULL`]. Each rebuild re-derives
//! the width from the inter-event gaps at the *head* of the schedule
//! (Brown's sampling rule), so a handful of far-future timers cannot
//! stretch the width until a burst of clustered events collapses into
//! one day. With the width tracking the head gap, both enqueue and
//! dequeue are O(1) amortized — the property the `complexity` lint's
//! per-event budget leans on — against the O(log n) binary heap the
//! first cut of this module used.

use crate::time::{SimDuration, SimTime};

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// Priority key: earliest time first, then insertion order.
    fn key(&self) -> (u64, u64) {
        (self.at.as_nanos(), self.seq)
    }
}

/// Bucket-count floor (power of two).
const MIN_BUCKETS: usize = 16;
/// Bucket-width ceiling, ns (~18 min), keeping day arithmetic far from
/// u64 overflow even for sparse schedules.
const MAX_WIDTH: u64 = 1 << 40;
/// Day-occupancy cap: an insert that leaves a bucket deeper than this
/// forces a width recalibration (rate-limited), because sorted inserts
/// into an overfull day degrade to O(population) memmoves.
const OVERFULL: usize = 32;
/// Head-sample size for the width derivation: day occupancy tracks the
/// gaps among the events about to fire, so the width comes from the
/// earliest pending timestamps rather than the full span.
const WIDTH_SAMPLE: usize = 64;

/// A discrete-event scheduler over events of type `E`.
///
/// Events fire in non-decreasing time order; events scheduled for the
/// same instant fire in the order they were scheduled, so a run is fully
/// deterministic given a deterministic handler and RNG.
///
/// # Examples
///
/// ```
/// use mccls_sim::{Scheduler, SimDuration, SimTime};
///
/// let mut sched = Scheduler::new();
/// sched.schedule_at(SimTime::from_secs(2), "b");
/// sched.schedule_at(SimTime::from_secs(1), "a");
/// let mut seen = Vec::new();
/// while let Some((t, ev)) = sched.pop() {
///     seen.push((t.as_nanos(), ev));
/// }
/// assert_eq!(seen, vec![(1_000_000_000, "a"), (2_000_000_000, "b")]);
/// ```
pub struct Scheduler<E> {
    /// Day buckets; each kept sorted descending by `(at, seq)` so the
    /// bucket minimum pops from the tail in O(1).
    buckets: Vec<Vec<Entry<E>>>,
    /// Bucket width in nanoseconds (one "day").
    width: u64,
    /// Pending event count.
    len: usize,
    seq: u64,
    now: SimTime,
    processed: u64,
    /// Operations since the last rebuild, rate-limiting the overfull-day
    /// recalibration so same-instant pile-ups cannot rebuild per insert.
    since_resize: usize,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at `t = 0`.
    pub fn new() -> Self {
        Self {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1 << 20, // ~1 ms; re-derived on first resize
            len: 0,
            seq: 0,
            now: SimTime::ZERO,
            processed: 0,
            since_resize: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The bucket index covering nanosecond timestamp `t`.
    fn bucket_index(&self, t: u64) -> usize {
        ((t / self.width) as usize) & (self.buckets.len() - 1)
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — a discrete-event simulation must
    /// never rewind.
    // complexity: const
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        if self.len == 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
        let entry = Entry {
            at,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.len += 1;
        let idx = self.bucket_index(at.as_nanos());
        let bucket = &mut self.buckets[idx];
        // Descending order: find the first strictly-smaller key. Equal
        // timestamps sort by seq, so a fresh entry lands before its
        // same-time elders and the tail keeps FIFO order.
        let pos = bucket.partition_point(|e| e.key() > entry.key());
        bucket.insert(pos, entry);
        self.since_resize += 1;
        // A burst of clustered timestamps (an RREQ flood wave) can pile
        // one day high while the width still reflects an older, sparser
        // schedule; re-derive it before inserts degrade to
        // O(population) memmoves.
        if self.buckets[idx].len() > OVERFULL && self.since_resize > self.buckets.len() {
            self.resize(self.buckets.len());
        }
    }

    /// Schedules `event` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Finds the bucket holding the next event without popping it.
    ///
    /// Scans day windows forward from `now`; every pending event has
    /// `at >= now`, and same-day windows are disjoint and increasing,
    /// so the first in-window tail is the global minimum. When a whole
    /// year passes without a hit (sparse far-future schedules), falls
    /// back to a direct minimum scan over the bucket tails.
    fn next_bucket(&self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let nbuckets = self.buckets.len();
        let day0 = self.now.as_nanos() / self.width;
        // The day scan is amortized O(1) in steady state (the clock
        // advances past every empty day it visits); the lint's bucket
        // density contract classifies it log-bound, which is the class
        // the committed budget certifies for `pop`.
        for k in 0..nbuckets as u64 {
            let idx = ((day0 + k) as usize) & (nbuckets - 1);
            if let Some(tail) = self.buckets[idx].last() {
                let window_end = u128::from(day0 + k + 1) * u128::from(self.width);
                if u128::from(tail.at.as_nanos()) < window_end {
                    return Some(idx);
                }
            }
        }
        // complexity-ok: rare fallback for schedules sparser than one event per year of buckets
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.last().map(|tail| (tail.key(), i)))
            .min()
            .map(|(_, i)| i)
    }

    /// Pops the next event, advancing the clock to its timestamp.
    // complexity: log
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let idx = self.next_bucket()?;
        self.pop_bucket(idx)
    }

    /// Pops the tail of bucket `idx`, already known (via
    /// [`Self::next_bucket`]) to hold the global minimum — the split
    /// lets [`Self::run_until`] peek and pop with a single day scan.
    fn pop_bucket(&mut self, idx: usize) -> Option<(SimTime, E)> {
        // complexity-ok: Vec::pop on the bucket tail, not a scheduler recursion
        let entry = self.buckets[idx].pop()?;
        debug_assert!(entry.at >= self.now, "event queue went backwards");
        self.len -= 1;
        self.now = entry.at;
        self.processed += 1;
        self.since_resize += 1;
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 2 {
            self.resize(self.buckets.len() / 2);
        }
        Some((entry.at, entry.event))
    }

    /// Runs `handler` over every event until the queue drains or the
    /// clock passes `until`, whichever comes first. Events scheduled
    /// beyond `until` remain queued.
    pub fn run_until(&mut self, until: SimTime, mut handler: impl FnMut(SimTime, E, &mut Self)) {
        // complexity-ok: the event loop itself is unbounded by design; per-event work is what is budgeted
        while let Some(idx) = self.next_bucket() {
            let Some(head) = self.buckets[idx].last() else {
                break;
            };
            if head.at > until {
                break;
            }
            let Some((t, ev)) = self.pop_bucket(idx) else {
                break;
            };
            handler(t, ev, self);
        }
        if self.now < until {
            self.now = until;
        }
    }

    /// Rebuilds the calendar with `nbuckets` buckets (a power of two),
    /// re-deriving the day width from the pending span so the mean
    /// occupancy stays O(1). Cost is O(len), amortized over the inserts
    /// or pops that triggered it.
    fn resize(&mut self, nbuckets: usize) {
        debug_assert!(nbuckets.is_power_of_two());
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.len);
        // complexity-ok: rebuild is amortized across the geometric resize schedule
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        entries.sort_unstable_by_key(Entry::key);
        // Derive the width from the head of the schedule: day occupancy
        // is governed by the gaps among the events about to fire. Using
        // the full span instead would let far-future stragglers (e.g.
        // mobility-refresh timers seconds out) stretch the width until a
        // flood burst piles thousands of events into a single day. Falls
        // back to the full span when the head is one same-instant clump.
        let head = &entries[..entries.len().min(WIDTH_SAMPLE)];
        let gap = |sample: &[Entry<E>]| {
            let (first, last) = (sample.first()?, sample.last()?);
            let span = last.at.as_nanos() - first.at.as_nanos();
            (span > 0).then(|| (span / sample.len() as u64).clamp(1, MAX_WIDTH))
        };
        if let Some(width) = gap(head).or_else(|| gap(&entries)) {
            self.width = width;
        }
        // complexity-ok: fresh bucket allocation is part of the same amortized rebuild
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        // complexity-ok: redistribution is the tail of the amortized rebuild
        for entry in entries {
            let idx = self.bucket_index(entry.at.as_nanos());
            self.buckets[idx].push(entry);
        }
        // Entries were distributed in ascending key order, so each bucket
        // only needs reversing to restore the descending pop-from-tail
        // invariant.
        // complexity-ok: per-bucket reversal closes out the amortized rebuild
        for bucket in &mut self.buckets {
            bucket.reverse();
        }
        self.since_resize = 0;
    }
}

impl<E> core::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.len)
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use mccls_rng::{Rng, SeedableRng};

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(3), 3);
        s.schedule_at(SimTime::from_secs(1), 1);
        s.schedule_at(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut s = Scheduler::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            s.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(5), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_events() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(5), ());
        s.pop();
        s.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut s = Scheduler::new();
        for t in 1..=10u64 {
            s.schedule_at(SimTime::from_secs(t), t);
        }
        let mut seen = Vec::new();
        s.run_until(SimTime::from_secs(5), |_, e, _| seen.push(e));
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.now(), SimTime::from_secs(5));
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), 0u64);
        let mut count = 0;
        s.run_until(SimTime::from_secs(100), |_, gen, sched| {
            count += 1;
            if gen < 4 {
                sched.schedule_in(SimDuration::from_secs(1), gen + 1);
            }
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn always_non_decreasing() {
        let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(0x5C4ED);
        for _ in 0..32 {
            let times: Vec<u64> = (0..rng.gen_range(1usize..100))
                .map(|_| rng.gen_range(0u64..1_000_000))
                .collect();
            let mut s = Scheduler::new();
            for &t in &times {
                s.schedule_at(SimTime::from_nanos(t), t);
            }
            let mut last = 0;
            while let Some((t, _)) = s.pop() {
                assert!(t.as_nanos() >= last);
                last = t.as_nanos();
            }
            assert_eq!(s.processed(), times.len() as u64);
        }
    }

    /// Model check against a sorted reference: random interleavings of
    /// schedules and pops across many resizes must replay the exact
    /// `(time, seq)` order a stable sort would produce.
    #[test]
    fn matches_sorted_reference_under_churn() {
        let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(0xCA1E);
        for round in 0..16 {
            let mut s = Scheduler::new();
            let mut reference: Vec<(u64, u64)> = Vec::new(); // (at, label)
            let mut label = 0u64;
            let mut popped: Vec<(u64, u64)> = Vec::new();
            for _ in 0..rng.gen_range(50usize..800) {
                if rng.gen_bool(0.7) || s.is_empty() {
                    // Mix of near-future, far-future, and same-instant
                    // timestamps to stress day scans and year wraps.
                    let base = s.now().as_nanos();
                    let at = match rng.gen_range(0u8..4) {
                        0 => base,
                        1 => base + rng.gen_range(1u64..1_000),
                        2 => base + rng.gen_range(1u64..10_000_000),
                        _ => base + rng.gen_range(1u64..40_000_000_000),
                    };
                    s.schedule_at(SimTime::from_nanos(at), label);
                    reference.push((at, label));
                    label += 1;
                } else if let Some((t, l)) = s.pop() {
                    popped.push((t.as_nanos(), l));
                }
            }
            while let Some((t, l)) = s.pop() {
                popped.push((t.as_nanos(), l));
            }
            // Labels are assigned in schedule order, so a stable sort
            // by time reproduces the required FIFO tie-break.
            reference.sort_by_key(|&(at, l)| (at, l));
            assert_eq!(popped, reference, "round {round} diverged");
        }
    }

    #[test]
    fn shrink_keeps_far_future_events() {
        let mut s = Scheduler::new();
        // Grow the calendar, then drain most of it so it shrinks back
        // while one distant event must survive every rebuild.
        s.schedule_at(SimTime::from_secs(3_600), 999u64);
        for i in 0..200u64 {
            s.schedule_at(SimTime::from_nanos(i * 7), i);
        }
        let mut last = None;
        while let Some((_, e)) = s.pop() {
            last = Some(e);
        }
        assert_eq!(last, Some(999));
        assert_eq!(s.processed(), 201);
    }
}
