//! Uniform spatial hash over the simulation plane.
//!
//! The grid divides the area into square cells whose side equals the
//! radio range, so every node within range of a query point lives in
//! the 3×3 block of cells around it (plus a configurable slack ring
//! when bucketed positions may be stale). Range queries therefore cost
//! O(neighbors) — the density contract the `complexity` lint leans on:
//! with cell side = radio range and bounded node density, a cell block
//! holds a bounded multiple of the true neighbor count.
//!
//! Re-bucketing is incremental: [`SpatialGrid::update`] moves a node
//! between buckets only when its cell actually changed, so a mobility
//! refresh is O(bucket occupancy), not O(n).

use crate::mobility::Position;

/// Sentinel for "not inserted".
const ABSENT: u32 = u32::MAX;

/// A uniform spatial hash mapping node indices to grid cells.
///
/// # Examples
///
/// ```
/// use mccls_sim::{Position, SpatialGrid};
///
/// let mut grid = SpatialGrid::new(1500.0, 300.0, 370.0);
/// grid.update(0, Position { x: 10.0, y: 10.0 });
/// grid.update(1, Position { x: 40.0, y: 20.0 });
/// grid.update(2, Position { x: 1490.0, y: 290.0 });
///
/// let mut out = Vec::new();
/// grid.candidates_into(Position { x: 0.0, y: 0.0 }, 0, &mut out);
/// assert!(out.contains(&0) && out.contains(&1) && !out.contains(&2));
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    /// Cell side length, metres (= radio range).
    cell: f64,
    /// Number of cell columns.
    cols: usize,
    /// Number of cell rows.
    rows: usize,
    /// Node indices per cell, unordered within a bucket.
    buckets: Vec<Vec<u32>>,
    /// Per node: index of the bucket currently holding it.
    homes: Vec<u32>,
    /// Number of nodes currently bucketed, maintained incrementally so
    /// `len`/`is_empty` are O(1).
    occupied: usize,
}

impl SpatialGrid {
    /// Builds an empty grid covering `width × height` metres with
    /// square cells of side `cell` (the radio range).
    ///
    /// # Panics
    ///
    /// Panics on non-positive or non-finite dimensions.
    pub fn new(width: f64, height: f64, cell: f64) -> Self {
        assert!(width > 0.0 && width.is_finite(), "invalid width");
        assert!(height > 0.0 && height.is_finite(), "invalid height");
        assert!(cell > 0.0 && cell.is_finite(), "invalid cell size");
        let cols = ((width / cell).ceil() as usize).max(1);
        let rows = ((height / cell).ceil() as usize).max(1);
        Self {
            cell,
            cols,
            rows,
            buckets: vec![Vec::new(); cols * rows],
            homes: Vec::new(),
            occupied: 0,
        }
    }

    /// Cell side length, metres.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of nodes currently bucketed.
    // complexity: const
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// True when no node is bucketed.
    // complexity: const
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// The bucket index covering `pos` (clamped to the grid edges, so
    /// off-area positions map to the nearest border cell).
    fn bucket_of(&self, pos: Position) -> u32 {
        let cx = ((pos.x / self.cell).floor().max(0.0) as usize).min(self.cols - 1);
        let cy = ((pos.y / self.cell).floor().max(0.0) as usize).min(self.rows - 1);
        (cy * self.cols + cx) as u32
    }

    /// Places or moves `node` to the cell covering `pos`. Returns true
    /// when the node changed cells (or was newly inserted); re-bucketing
    /// is skipped entirely when the cell is unchanged.
    // complexity: const
    pub fn update(&mut self, node: usize, pos: Position) -> bool {
        if node >= self.homes.len() {
            self.homes.resize(node + 1, ABSENT);
        }
        let new_home = self.bucket_of(pos);
        let old_home = self.homes[node];
        if old_home == new_home {
            return false;
        }
        if old_home == ABSENT {
            self.occupied += 1;
        } else {
            self.evict(node, old_home);
        }
        self.buckets[new_home as usize].push(node as u32);
        self.homes[node] = new_home;
        true
    }

    /// Drops `node` from the grid (a departing peer). Returns true when
    /// the node was present.
    pub fn remove(&mut self, node: usize) -> bool {
        let Some(&home) = self.homes.get(node) else {
            return false;
        };
        if home == ABSENT {
            return false;
        }
        self.evict(node, home);
        self.homes[node] = ABSENT;
        self.occupied -= 1;
        true
    }

    fn evict(&mut self, node: usize, home: u32) {
        let bucket = &mut self.buckets[home as usize];
        // complexity-ok: bucket occupancy is density-bounded (cell side = radio range)
        if let Some(i) = bucket.iter().position(|&n| n == node as u32) {
            bucket.swap_remove(i);
        }
    }

    /// Appends to `out` every node bucketed within `1 + slack` cells
    /// (Chebyshev) of the cell covering `pos` — a superset of the nodes
    /// within radio range, provided no bucketed position is stale by
    /// more than `slack` cell widths. Candidates arrive in ascending
    /// node order so downstream iteration is deterministic.
    pub fn candidates_into(&self, pos: Position, slack: usize, out: &mut Vec<u32>) {
        let cx = ((pos.x / self.cell).floor().max(0.0) as usize).min(self.cols - 1);
        let cy = ((pos.y / self.cell).floor().max(0.0) as usize).min(self.rows - 1);
        let reach = 1 + slack;
        let x0 = cx.saturating_sub(reach);
        let x1 = (cx + reach).min(self.cols - 1);
        let y0 = cy.saturating_sub(reach);
        let y1 = (cy + reach).min(self.rows - 1);
        let before = out.len();
        // complexity-ok: cell block is (3 + 2*slack)^2 cells, constant by the density contract
        for gy in y0..=y1 {
            // complexity-ok: inner axis of the constant cell block
            for gx in x0..=x1 {
                out.extend_from_slice(&self.buckets[gy * self.cols + gx]);
            }
        }
        out[before..].sort_unstable();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    fn pos(x: f64, y: f64) -> Position {
        Position { x, y }
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut g = SpatialGrid::new(1000.0, 1000.0, 100.0);
        assert!(g.is_empty());
        assert!(g.update(7, pos(50.0, 50.0)));
        assert_eq!(g.len(), 1);
        let mut out = Vec::new();
        g.candidates_into(pos(60.0, 60.0), 0, &mut out);
        assert_eq!(out, vec![7]);
        assert!(g.remove(7));
        assert!(!g.remove(7));
        assert!(g.is_empty());
    }

    #[test]
    fn update_same_cell_is_a_no_op() {
        let mut g = SpatialGrid::new(1000.0, 1000.0, 100.0);
        assert!(g.update(3, pos(10.0, 10.0)));
        assert!(!g.update(3, pos(90.0, 90.0)), "same cell, no re-bucket");
        assert!(g.update(3, pos(110.0, 10.0)), "crossed a cell border");
        let mut out = Vec::new();
        g.candidates_into(pos(10.0, 10.0), 0, &mut out);
        assert_eq!(out, vec![3], "still adjacent after the move");
    }

    #[test]
    fn all_in_range_nodes_are_candidates() {
        // Exhaustive check against a linear scan: every node within
        // `cell` metres of the query point must appear as a candidate.
        let mut g = SpatialGrid::new(1500.0, 300.0, 370.0);
        let mut nodes = Vec::new();
        let mut x = 7.0_f64;
        let mut y = 13.0_f64;
        for i in 0..200 {
            // Cheap deterministic scatter (no RNG needed).
            x = (x * 31.0 + 17.0) % 1500.0;
            y = (y * 29.0 + 11.0) % 300.0;
            g.update(i, pos(x, y));
            nodes.push(pos(x, y));
        }
        let q = pos(750.0, 150.0);
        let mut out = Vec::new();
        g.candidates_into(q, 0, &mut out);
        for (i, p) in nodes.iter().enumerate() {
            if p.distance(&q) <= 370.0 {
                assert!(out.contains(&(i as u32)), "node {i} in range but missed");
            }
        }
    }

    #[test]
    fn slack_widens_the_block() {
        let mut g = SpatialGrid::new(1000.0, 100.0, 100.0);
        g.update(0, pos(250.0, 50.0)); // two cells from the query cell
        let mut tight = Vec::new();
        g.candidates_into(pos(50.0, 50.0), 0, &mut tight);
        assert!(tight.is_empty());
        let mut wide = Vec::new();
        g.candidates_into(pos(50.0, 50.0), 1, &mut wide);
        assert_eq!(wide, vec![0]);
    }

    #[test]
    fn candidates_are_sorted_regardless_of_bucket_history() {
        let mut g = SpatialGrid::new(200.0, 200.0, 100.0);
        // Insert out of order and churn the bucket so swap_remove
        // scrambles its internal ordering.
        g.update(9, pos(10.0, 10.0));
        g.update(2, pos(20.0, 10.0));
        g.update(5, pos(30.0, 10.0));
        g.update(2, pos(110.0, 10.0)); // leave...
        g.update(2, pos(20.0, 10.0)); // ...and come back
        let mut out = Vec::new();
        g.candidates_into(pos(15.0, 15.0), 0, &mut out);
        assert_eq!(out, vec![2, 5, 9]);
    }

    #[test]
    fn off_area_positions_clamp_to_border_cells() {
        let mut g = SpatialGrid::new(100.0, 100.0, 100.0);
        g.update(0, pos(150.0, -20.0)); // outside: clamps to the lone cell
        let mut out = Vec::new();
        g.candidates_into(pos(50.0, 50.0), 0, &mut out);
        assert_eq!(out, vec![0]);
    }
}
