//! Random-waypoint mobility (the model the paper's QualNet scenario
//! uses: nodes in a rectangle repeatedly pick a uniform destination and
//! speed, travel there in a straight line, pause, repeat).
//!
//! Each node owns a private RNG stream (seeded once at construction),
//! so a trajectory is a pure function of the construction draws and of
//! time: *when* and *how often* a node is sampled cannot perturb it,
//! and it cannot perturb any other node. That independence is what
//! lets the spatial grid sample only candidate neighbors per event
//! while staying bit-identical to a full linear scan.

use mccls_rng::{Rng, SeedableRng};

use crate::time::{SimDuration, SimTime};

/// A position in the simulation plane, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Position {
    /// Euclidean distance to `other`, metres.
    pub fn distance(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// The rectangular simulation area (the paper uses 1500 m × 300 m).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Area {
    /// Width, metres.
    pub width: f64,
    /// Height, metres.
    pub height: f64,
}

impl Area {
    /// Builds an area, validating the dimensions.
    ///
    /// # Panics
    ///
    /// Panics on non-positive or non-finite dimensions.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(width > 0.0 && width.is_finite(), "invalid width");
        assert!(height > 0.0 && height.is_finite(), "invalid height");
        Self { width, height }
    }

    /// Uniformly random point inside the area.
    pub fn random_point(&self, rng: &mut impl Rng) -> Position {
        Position {
            x: rng.gen_range(0.0..self.width),
            y: rng.gen_range(0.0..self.height),
        }
    }

    /// True when `p` lies inside (inclusive of the border).
    pub fn contains(&self, p: &Position) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }
}

/// Random-waypoint parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaypointConfig {
    /// Maximum node speed (m/s). The paper sweeps this from 0 to 20.
    pub max_speed: f64,
    /// Minimum node speed (m/s). Kept strictly positive (unless
    /// `max_speed` is 0) to avoid the classic RWP speed-decay
    /// pathology of near-zero legs that never finish.
    pub min_speed: f64,
    /// Pause at each waypoint (0 s in the paper).
    pub pause: SimDuration,
}

impl WaypointConfig {
    /// The paper's configuration for a given maximum speed: pause 0,
    /// minimum speed 10% of the maximum (floored at 0.1 m/s).
    pub fn paper(max_speed: f64) -> Self {
        assert!(max_speed >= 0.0 && max_speed.is_finite(), "invalid speed");
        let min_speed = if max_speed == 0.0 {
            0.0
        } else {
            (0.1 * max_speed).max(0.1)
        };
        Self {
            max_speed,
            min_speed,
            pause: SimDuration::ZERO,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Leg {
    /// Standing still (pausing, or `max_speed == 0`) since/at `at`.
    Idle {
        at: Position,
        until: Option<SimTime>,
    },
    /// Moving from `from` (at `start`) towards `to` at `speed` m/s.
    Moving {
        from: Position,
        to: Position,
        start: SimTime,
        speed: f64,
    },
}

/// The mobility state of one node.
///
/// Positions are evaluated analytically along the current leg, so the
/// model is exact regardless of how often it is sampled.
///
/// # Examples
///
/// ```
/// use mccls_sim::{Area, RandomWaypoint, SimTime, WaypointConfig};
/// use mccls_rng::SeedableRng;
///
/// let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(1);
/// let area = Area::new(1500.0, 300.0);
/// let mut node = RandomWaypoint::new(area, WaypointConfig::paper(10.0), &mut rng);
/// let p = node.position_at(SimTime::from_secs(30));
/// assert!(area.contains(&p));
/// ```
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    area: Area,
    config: WaypointConfig,
    leg: Leg,
    /// Time up to which the state has been advanced.
    horizon: SimTime,
    /// Private waypoint stream: two nodes never share draws, so one
    /// node's sampling pattern cannot shift another's trajectory.
    rng: mccls_rng::rngs::StdRng,
}

impl RandomWaypoint {
    /// Places a node uniformly in `area` and starts its first leg at
    /// `t = 0`.
    ///
    /// `rng` is only used for the initial placement and to derive the
    /// node's private waypoint stream; the returned node never touches
    /// it again.
    pub fn new(area: Area, config: WaypointConfig, rng: &mut impl Rng) -> Self {
        let start = area.random_point(rng);
        let stream = mccls_rng::rngs::StdRng::seed_from_u64(rng.next_u64());
        let mut node = Self {
            area,
            config,
            leg: Leg::Idle {
                at: start,
                until: Some(SimTime::ZERO),
            },
            horizon: SimTime::ZERO,
            rng: stream,
        };
        node.advance_to(SimTime::ZERO);
        node
    }

    /// The node's position at time `t`, advancing internal state.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes an earlier query (time must be sampled
    /// monotonically, which the event loop guarantees).
    pub fn position_at(&mut self, t: SimTime) -> Position {
        assert!(t >= self.horizon, "mobility sampled backwards in time");
        self.advance_to(t);
        match self.leg {
            Leg::Idle { at, .. } => at,
            Leg::Moving {
                from,
                to,
                start,
                speed,
            } => {
                let elapsed = (t - start).as_secs_f64();
                let total = from.distance(&to);
                let travelled = (speed * elapsed).min(total);
                let frac = if total == 0.0 { 1.0 } else { travelled / total };
                Position {
                    x: from.x + (to.x - from.x) * frac,
                    y: from.y + (to.y - from.y) * frac,
                }
            }
        }
    }

    fn advance_to(&mut self, t: SimTime) {
        self.horizon = t;
        // complexity-ok: amortized O(1) — each iteration retires one travel leg, and legs are only ever created one per waypoint drawn
        loop {
            match self.leg {
                Leg::Idle { until: None, .. } => return, // parked forever
                Leg::Idle {
                    at,
                    until: Some(until),
                } => {
                    if until > t {
                        return;
                    }
                    if self.config.max_speed <= 0.0 {
                        self.leg = Leg::Idle { at, until: None };
                        return;
                    }
                    let to = self.area.random_point(&mut self.rng);
                    let speed = if self.config.min_speed >= self.config.max_speed {
                        self.config.max_speed
                    } else {
                        self.rng
                            .gen_range(self.config.min_speed..self.config.max_speed)
                    };
                    self.leg = Leg::Moving {
                        from: at,
                        to,
                        start: until,
                        speed,
                    };
                }
                Leg::Moving {
                    from,
                    to,
                    start,
                    speed,
                } => {
                    let total = from.distance(&to);
                    let arrival = start
                        + SimDuration::from_secs_f64(if speed > 0.0 { total / speed } else { 0.0 });
                    if arrival > t {
                        return;
                    }
                    self.leg = Leg::Idle {
                        at: to,
                        until: Some(arrival + self.config.pause),
                    };
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use mccls_rng::SeedableRng;

    fn rng(seed: u64) -> mccls_rng::rngs::StdRng {
        mccls_rng::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn stays_inside_area() {
        let area = Area::new(1500.0, 300.0);
        let mut r = rng(1);
        let mut node = RandomWaypoint::new(area, WaypointConfig::paper(20.0), &mut r);
        for s in 0..600 {
            let p = node.position_at(SimTime::from_secs(s));
            assert!(area.contains(&p), "escaped at t={s}: {p:?}");
        }
    }

    #[test]
    fn zero_speed_nodes_never_move() {
        let area = Area::new(100.0, 100.0);
        let mut r = rng(2);
        let mut node = RandomWaypoint::new(area, WaypointConfig::paper(0.0), &mut r);
        let p0 = node.position_at(SimTime::ZERO);
        for s in 1..100 {
            assert_eq!(node.position_at(SimTime::from_secs(s)), p0);
        }
    }

    #[test]
    fn respects_speed_limit() {
        let area = Area::new(1500.0, 300.0);
        let mut r = rng(3);
        let max = 20.0;
        let mut node = RandomWaypoint::new(area, WaypointConfig::paper(max), &mut r);
        let mut last = node.position_at(SimTime::ZERO);
        for s in 1..300 {
            let p = node.position_at(SimTime::from_secs(s));
            let dist = p.distance(&last);
            assert!(dist <= max + 1e-6, "moved {dist} m in 1 s (max {max})");
            last = p;
        }
    }

    #[test]
    fn moving_nodes_do_move() {
        let area = Area::new(1500.0, 300.0);
        let mut r = rng(4);
        let mut node = RandomWaypoint::new(area, WaypointConfig::paper(10.0), &mut r);
        let p0 = node.position_at(SimTime::ZERO);
        let p1 = node.position_at(SimTime::from_secs(60));
        assert!(p0.distance(&p1) > 1.0, "node stayed put for a minute");
    }

    #[test]
    fn pause_holds_position_at_waypoints() {
        let area = Area::new(10.0, 10.0);
        let mut r = rng(5);
        let config = WaypointConfig {
            max_speed: 5.0,
            min_speed: 5.0,
            pause: SimDuration::from_secs(1_000_000),
        };
        let mut node = RandomWaypoint::new(area, config, &mut r);
        // After at most ~3 s the node reaches its first waypoint
        // (diagonal of a 10x10 box at 5 m/s), then pauses ~forever.
        let p_a = node.position_at(SimTime::from_secs(10));
        let p_b = node.position_at(SimTime::from_secs(500));
        assert_eq!(p_a, p_b);
    }

    #[test]
    #[should_panic(expected = "sampled backwards")]
    fn rejects_backwards_sampling() {
        let area = Area::new(10.0, 10.0);
        let mut r = rng(6);
        let mut node = RandomWaypoint::new(area, WaypointConfig::paper(1.0), &mut r);
        node.position_at(SimTime::from_secs(10));
        node.position_at(SimTime::from_secs(5));
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Position { x: 1.0, y: 2.0 };
        let b = Position { x: 4.0, y: 6.0 };
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
    }
}
