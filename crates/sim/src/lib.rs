//! Discrete-event MANET simulation substrate — the workspace's stand-in
//! for the proprietary QualNet simulator the paper evaluates with.
//!
//! Four orthogonal pieces:
//!
//! * [`Scheduler`] — a deterministic discrete-event calendar queue over
//!   typed events ([`SimTime`]/[`SimDuration`] virtual time, FIFO
//!   tie-break, O(1) amortized enqueue/dequeue);
//! * [`RandomWaypoint`] — the random-waypoint mobility model over a
//!   rectangular [`Area`], evaluated analytically on a private per-node
//!   RNG stream;
//! * [`RadioConfig`] — unit-disk connectivity with bandwidth-derived
//!   serialization delay, per-receiver MAC jitter, and optional frame
//!   loss;
//! * [`SpatialGrid`] — a uniform spatial hash (cell side = radio range)
//!   giving O(neighbors) range queries with incremental re-bucketing.
//!
//! The AODV routing protocol, its McCLS security extension, the attack
//! models, and the experiment harness live in the `mccls-aodv` crate on
//! top of these primitives.
//!
//! # Examples
//!
//! ```
//! use mccls_sim::{Scheduler, SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Event { Ping(u32) }
//!
//! let mut sched = Scheduler::new();
//! sched.schedule_at(SimTime::from_secs(1), Event::Ping(0));
//! let mut pings = 0;
//! sched.run_until(SimTime::from_secs(10), |_, Event::Ping(n), s| {
//!     pings += 1;
//!     if n < 3 {
//!         s.schedule_in(SimDuration::from_secs(2), Event::Ping(n + 1));
//!     }
//! });
//! assert_eq!(pings, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod mobility;
mod radio;
mod scheduler;
mod time;

pub use grid::SpatialGrid;
pub use mobility::{Area, Position, RandomWaypoint, WaypointConfig};
pub use radio::RadioConfig;
pub use scheduler::Scheduler;
pub use time::{SimDuration, SimTime};
