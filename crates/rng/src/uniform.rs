//! Uniform range sampling for the types the workspace draws.

use crate::RngCore;

/// Converts a raw word into a double in `[0, 1)` using the top 53 bits.
#[inline]
pub(crate) fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
}

/// Types that can be sampled uniformly from a half-open range.
///
/// Integer sampling uses Lemire's multiply-shift reduction with a
/// rejection step, so integer draws are exactly uniform. Float sampling
/// maps the top 53 bits onto `[low, high)`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty (`low >= high`).
    fn sample_range(rng: &mut (impl RngCore + ?Sized), low: Self, high: Self) -> Self;
}

/// Draws a uniform value below `bound` (exclusive) without modulo bias:
/// Lemire, "Fast random integer generation in an interval" (TOMS 2019).
fn uniform_below(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut m = (rng.next_u64() as u128).wrapping_mul(bound as u128);
    let mut lo = m as u64;
    if lo < bound {
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            m = (rng.next_u64() as u128).wrapping_mul(bound as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(
                rng: &mut (impl RngCore + ?Sized),
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as u64) - (low as u64);
                low + (uniform_below(rng, span) as Self)
            }
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut (impl RngCore + ?Sized), low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample from empty range");
        let sampled = low + (high - low) * unit_f64(rng.next_u64());
        // Floating-point rounding can land exactly on `high`; clamp back
        // inside the half-open interval.
        if sampled >= high {
            high - (high - low) * f64::EPSILON
        } else {
            sampled
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range(rng: &mut (impl RngCore + ?Sized), low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample from empty range");
        let sampled = f64::sample_range(rng, low as f64, high as f64) as f32;
        if sampled >= high {
            low
        } else {
            sampled
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use crate::SeedableRng;

    #[test]
    fn uniform_below_is_unbiased_over_small_bound() {
        let mut rng = crate::rngs::StdRng::seed_from_u64(1);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[uniform_below(&mut rng, 3) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn unit_f64_spans_the_unit_interval() {
        assert_eq!(unit_f64(0), 0.0);
        let max = unit_f64(u64::MAX);
        assert!(max < 1.0 && max > 0.999_999);
    }
}
