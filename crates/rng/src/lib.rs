//! Deterministic random number generation for the McCLS workspace.
//!
//! The workspace must build and test with **no network access**, so it
//! cannot depend on the external `rand` crate. This crate supplies the
//! small slice of that API the workspace actually uses, implemented from
//! scratch:
//!
//! * [`RngCore`] — the object-safe generator interface
//!   (`next_u32` / `next_u64` / `fill_bytes`);
//! * [`SeedableRng`] — deterministic construction, including the
//!   `seed_from_u64` convenience used throughout the tests and the
//!   simulation harness;
//! * [`Rng`] — the ergonomic extension trait (`gen_range`, `gen_bool`);
//! * [`rngs::StdRng`] — the workspace's standard generator, a
//!   [xoshiro256**](https://prng.di.unimi.it/) instance seeded through
//!   [`SplitMix64`] as its authors recommend.
//!
//! Everything here is deterministic by design: simulation results and
//! test vectors are reproducible from a `u64` seed alone. **None of these
//! generators are cryptographically secure.** They are used for
//! simulation, testing, and sampling field elements in a reproduction
//! setting; a deployment would substitute a CSPRNG behind the same
//! [`RngCore`] interface.
//!
//! # Examples
//!
//! ```
//! use mccls_rng::{Rng, RngCore, SeedableRng};
//!
//! let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(7);
//! let a = rng.next_u64();
//! let lane: f64 = rng.gen_range(0.0..250.0);
//! let coin = rng.gen_bool(0.5);
//! assert!((0.0..250.0).contains(&lane));
//! let mut replay = mccls_rng::rngs::StdRng::seed_from_u64(7);
//! assert_eq!(replay.next_u64(), a);
//! let _ = coin;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod splitmix;
mod uniform;
mod xoshiro;

pub use splitmix::SplitMix64;
pub use uniform::SampleUniform;
pub use xoshiro::Xoshiro256StarStar;

/// The generators module, mirroring the external `rand` crate's `rngs`
/// module so call sites read the same way they would against it.
pub mod rngs {
    /// The workspace's standard generator: xoshiro256** behind splitmix64
    /// seeding. Deterministic and fast; **not** cryptographically secure.
    pub type StdRng = super::Xoshiro256StarStar;
}

/// A stream of pseudo-random bits.
///
/// Object safe (`&mut dyn RngCore` works), mirroring the shape of the
/// external `rand` crate's `RngCore` so generic bounds like
/// `rng: &mut (impl RngCore + ?Sized)` port over unchanged.
pub trait RngCore {
    /// The next 32 pseudo-random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// The full-entropy seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via [`SplitMix64`] and constructs
    /// the generator — the idiom every test and experiment in the
    /// workspace uses.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64::new(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            for (dst, src) in chunk.iter_mut().zip(bytes) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Ergonomic sampling helpers on top of [`RngCore`].
///
/// Blanket-implemented for every generator; the generic methods require
/// `Self: Sized` so the core trait stays object safe.
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics when `range` is empty, matching `rand`'s contract.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    ///
    /// `p` is clamped to `[0, 1]`; `NaN` is treated as `0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        uniform::unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for len in [0usize, 1, 7, 8, 9, 31, 64] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            // A 31-byte read must not leave the tail untouched.
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }

    #[test]
    fn fill_bytes_matches_next_u64_le() {
        let mut a = rngs::StdRng::seed_from_u64(9);
        let mut b = rngs::StdRng::seed_from_u64(9);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let mut expect = [0u8; 16];
        expect[..8].copy_from_slice(&b.next_u64().to_le_bytes());
        expect[8..].copy_from_slice(&b.next_u64().to_le_bytes());
        assert_eq!(buf, expect);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..17);
            assert!((10..17).contains(&v));
            let f: f64 = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let w: u32 = rng.gen_range(1..2);
            assert_eq!(w, 1);
        }
    }

    #[test]
    fn gen_range_hits_every_bucket() {
        let mut rng = rngs::StdRng::seed_from_u64(6);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        let _ = rng.gen_range(5u64..5);
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = rngs::StdRng::seed_from_u64(8);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn dyn_rng_core_is_object_safe() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        let dynamic: &mut dyn RngCore = &mut rng;
        let mut buf = [0u8; 4];
        dynamic.fill_bytes(&mut buf);
        let _ = dynamic.next_u32();
    }
}
