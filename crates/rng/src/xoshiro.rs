//! xoshiro256** — the workspace's standard generator.
//!
//! Blackman & Vigna, "Scrambled linear pseudorandom number generators"
//! (TOMS 2021). 256 bits of state, period `2^256 - 1`, excellent
//! statistical quality, and a handful of rotate/xor/shift operations per
//! output word — a good fit for a simulation substrate that draws many
//! millions of variates per run.

use crate::{RngCore, SeedableRng};

/// Fills `dest` from a `u64` source, little-endian, discarding the unused
/// tail of the final word. Shared by every generator in this crate.
pub(crate) fn fill_bytes_via_next_u64(dest: &mut [u8], mut next: impl FnMut() -> u64) {
    for chunk in dest.chunks_mut(8) {
        let bytes = next().to_le_bytes();
        for (dst, src) in chunk.iter_mut().zip(bytes) {
            *dst = src;
        }
    }
}

/// The xoshiro256** generator.
///
/// Deterministic, fast, and statistically strong; **not**
/// cryptographically secure. Construct it with
/// [`SeedableRng::seed_from_u64`] (splitmix64 state expansion, as the
/// algorithm's authors recommend) or [`SeedableRng::from_seed`] with 32
/// bytes of seed material.
///
/// # Examples
///
/// ```
/// use mccls_rng::{RngCore, SeedableRng, Xoshiro256StarStar};
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(1);
/// let first = rng.next_u64();
/// assert_eq!(Xoshiro256StarStar::seed_from_u64(1).next_u64(), first);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Advances the state and returns the next output word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for Xoshiro256StarStar {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        // The upper bits have the better equidistribution properties.
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        Xoshiro256StarStar::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_next_u64(dest, || self.next_u64());
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            *lane = u64::from_le_bytes(word);
        }
        // The all-zero state is a fixed point; remap it to a nonzero
        // constant so every seed yields a working generator.
        if s == [0; 4] {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0xbf58_476d_1ce4_e5b9,
                0x94d0_49bb_1331_11eb,
                0x2545_f491_4f6c_dd1d,
            ];
        }
        Self { s }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn reference_vectors_from_spec_seed() {
        // State {1, 2, 3, 4}: vectors from the xoshiro256** reference
        // implementation (prng.di.unimi.it).
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = Xoshiro256StarStar::from_seed(seed);
        let expected: [u64; 6] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_remapped_and_usable() {
        let mut rng = Xoshiro256StarStar::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
    }

    #[test]
    fn next_u32_uses_high_bits() {
        let mut a = Xoshiro256StarStar::seed_from_u64(3);
        let mut b = Xoshiro256StarStar::seed_from_u64(3);
        assert_eq!(a.next_u32() as u64, b.next_u64() >> 32);
    }
}
