//! SplitMix64 — the seed expander.
//!
//! Steele, Lea & Flood, "Fast splittable pseudorandom number generators"
//! (OOPSLA 2014). Its single-u64 state and equidistributed output make it
//! the recommended way to turn one seed word into the 256-bit state
//! xoshiro256** requires without correlated lanes.

use crate::{RngCore, SeedableRng};

/// The SplitMix64 generator.
///
/// Used primarily as the seed expander behind
/// [`SeedableRng::seed_from_u64`], but it is a serviceable (if small)
/// generator in its own right.
///
/// # Examples
///
/// ```
/// use mccls_rng::SplitMix64;
///
/// let mut sm = SplitMix64::new(0);
/// // Reference vector from the public-domain C implementation.
/// assert_eq!(sm.next_u64(), 0xe220a8397b1dcdaf);
/// assert_eq!(sm.next_u64(), 0x6e789e6aa1b965f4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed word.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Advances the state and returns the next output word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        crate::xoshiro::fill_bytes_via_next_u64(dest, || self.next_u64());
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_dispersed() {
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
    }

    #[test]
    fn zero_seed_reference_vectors() {
        let mut sm = SplitMix64::new(0);
        let expected: [u64; 5] = [
            0xe220_a839_7b1d_cdaf,
            0x6e78_9e6a_a1b9_65f4,
            0x06c4_5d18_8009_454f,
            0xf88b_b8a8_724c_81ec,
            0x1b39_896a_51a8_749b,
        ];
        for e in expected {
            assert_eq!(sm.next_u64(), e);
        }
    }
}
