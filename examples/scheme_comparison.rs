//! Side-by-side comparison of all four certificateless signature
//! schemes (the paper's Table 1, live): AP, ZWXF, YHG, and McCLS.
//!
//! Run with: `cargo run --release --example scheme_comparison`

use std::time::Instant;

use mccls::cls::{all_schemes, ops};
use mccls_rng::SeedableRng;

fn main() {
    let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(3);
    let msg = b"a routing control packet to authenticate";

    println!(
        "{:<7} {:>14} {:>10} {:>16} {:>11} {:>8} {:>7}",
        "scheme", "sign ops", "sign ms", "verify ops", "verify ms", "pk B", "sig B"
    );
    for scheme in all_schemes() {
        let (params, kgc) = scheme.setup(&mut rng);
        let partial = scheme.extract_partial_private_key(&kgc, b"node");
        let keys = scheme.generate_key_pair(&params, &mut rng);

        let (sig, sign_ops) =
            ops::measure(|| scheme.sign(&params, b"node", &partial, &keys, msg, &mut rng));
        let t = Instant::now();
        for _ in 0..5 {
            let _ = scheme.sign(&params, b"node", &partial, &keys, msg, &mut rng);
        }
        let sign_ms = t.elapsed().as_secs_f64() * 1e3 / 5.0;

        let (ok, verify_ops) =
            ops::measure(|| scheme.verify(&params, b"node", &keys.public, msg, &sig));
        assert!(ok.is_ok());
        let t = Instant::now();
        for _ in 0..5 {
            assert!(scheme
                .verify(&params, b"node", &keys.public, msg, &sig)
                .is_ok());
        }
        let verify_ms = t.elapsed().as_secs_f64() * 1e3 / 5.0;

        println!(
            "{:<7} {:>14} {:>10.2} {:>16} {:>11.2} {:>8} {:>7}",
            scheme.name(),
            sign_ops.shorthand(),
            sign_ms,
            verify_ops.shorthand(),
            verify_ms,
            keys.public.encoded_len(),
            sig.encoded_len()
        );
    }
    println!("\n(p = pairing, s = scalar multiplication, e = GT exponentiation,");
    println!(" h suffix omitted: ZWXF additionally computes 2 hash-to-G1 maps per op)");
    println!("McCLS signs without any pairing and verifies against a cacheable");
    println!("constant — the efficiency claim that makes it suitable for CPS.");
}
