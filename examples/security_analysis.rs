//! Runs the Type I / Type II adversary games against every scheme and
//! demonstrates the reproduction's security finding: the McCLS scheme is
//! *forgeable by a malicious KGC* (its unproved Theorem 2 does not
//! hold), while its Type I claim survives every strategy in the
//! harness.
//!
//! Run with: `cargo run --release --example security_analysis`

use mccls::cls::security::{mccls_type2_forgery, run_type1_game, run_type2_game};
use mccls::cls::{all_schemes, CertificatelessScheme, McCls};
use mccls_rng::SeedableRng;

fn main() {
    let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(5);

    println!("== Type I games (public-key replacement, no master secret) ==");
    for scheme in all_schemes() {
        let report = run_type1_game(scheme.as_ref(), &mut rng);
        for o in &report.outcomes {
            println!(
                "  {:<6} {:<48} {}",
                report.scheme,
                o.strategy,
                if o.forged { "FORGED!" } else { "rejected" }
            );
        }
    }

    println!("\n== Type II games (malicious KGC, honest public keys) ==");
    for scheme in all_schemes() {
        let report = run_type2_game(scheme.as_ref(), &mut rng);
        for o in &report.outcomes {
            println!(
                "  {:<6} {:<48} {}",
                report.scheme,
                o.strategy,
                if o.forged { "FORGED!" } else { "rejected" }
            );
        }
    }

    println!("\n== Constructive Type II break of McCLS ==");
    println!("(S = D_ID, R = rho*P, V = h*(1+rho) — no user secret needed)");
    let scheme = McCls::new();
    let (params, kgc) = scheme.setup(&mut rng);
    let victim = scheme.generate_key_pair(&params, &mut rng);
    let msg = b"any message the malicious KGC chooses";
    let forged = mccls_type2_forgery(&params, &kgc, b"victim", &victim.public, msg, &mut rng);
    let accepted = scheme
        .verify(&params, b"victim", &victim.public, msg, &forged)
        .is_ok();
    println!(
        "forged signature under the victim's registered public key: {}",
        if accepted {
            "ACCEPTED — Theorem 2 is refuted"
        } else {
            "rejected"
        }
    );
    assert!(accepted, "the reproduction's forgery must verify");
}
