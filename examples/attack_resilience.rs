//! The paper's headline security result, end to end: black hole and
//! rushing attackers devastate plain AODV but are completely
//! neutralized by the McCLS routing-authentication extension.
//!
//! Run with: `cargo run --release --example attack_resilience`

use mccls::aodv::{Behavior, Metrics, Network, ScenarioConfig};
use mccls::sim::SimDuration;

fn run(label: &str, cfg: ScenarioConfig) -> Metrics {
    let m = Network::new(cfg).run();
    println!("{label:<34} {m}");
    m
}

fn scenario(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_baseline(5.0, seed);
    cfg.duration = SimDuration::from_secs(120);
    cfg
}

fn main() {
    println!("20 nodes @ 5 m/s, 120 s, 10 CBR flows, 2 attackers where noted\n");
    let seed = 2024;

    run("AODV, no attack", scenario(seed));
    let bh = run(
        "AODV, 2-node black hole",
        scenario(seed).with_attackers(Behavior::BlackHole, 2),
    );
    let rush = run(
        "AODV, 2-node rushing",
        scenario(seed).with_attackers(Behavior::Rushing, 2),
    );
    let forge = run(
        "AODV, 2-node forging black hole",
        scenario(seed).with_attackers(Behavior::ForgingBlackHole, 2),
    );

    println!();
    run("McCLS, no attack", scenario(seed).secured());
    let bh_s = run(
        "McCLS, 2-node black hole",
        scenario(seed)
            .secured()
            .with_attackers(Behavior::BlackHole, 2),
    );
    let rush_s = run(
        "McCLS, 2-node rushing",
        scenario(seed)
            .secured()
            .with_attackers(Behavior::Rushing, 2),
    );
    let forge_s = run(
        "McCLS, 2-node forging black hole",
        scenario(seed)
            .secured()
            .with_attackers(Behavior::ForgingBlackHole, 2),
    );

    println!();
    assert!(bh.attacker_dropped + rush.attacker_dropped + forge.attacker_dropped > 0);
    assert_eq!(bh_s.attacker_dropped, 0);
    assert_eq!(rush_s.attacker_dropped, 0);
    assert_eq!(forge_s.attacker_dropped, 0);
    println!(
        "attackers absorbed {} packets from plain AODV and 0 from McCLS-secured AODV.",
        bh.attacker_dropped + rush.attacker_dropped + forge.attacker_dropped
    );
}
