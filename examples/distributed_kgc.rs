//! A KGC with no fixed infrastructure: the master key is Shamir-shared
//! across five MANET nodes (3-of-5). A joining sensor collects partial
//! key shares from any three of them, verifies each against the
//! published verification keys, combines, and signs with McCLS — no
//! single node ever holds the master secret.
//!
//! Run with: `cargo run --release --example distributed_kgc`

// Demo code: panicking on a broken invariant is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mccls::cls::threshold::{combine_shares, threshold_setup, verify_share};
use mccls::cls::{CertificatelessScheme, McCls};
use mccls::pairing::G1Projective;
use mccls_rng::SeedableRng;

fn main() {
    let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(31);

    // Dealer ceremony: 5 share servers, threshold 3; s is discarded.
    let setup = threshold_setup(5, 3, &mut rng);
    println!("threshold KGC: 3-of-5 share servers, P_pub published, master key discarded.");

    let id = b"sensor-42";

    // The sensor queries servers 1, 3, 4 — server 3 is byzantine and
    // returns garbage.
    let mut responses = Vec::new();
    for &i in &[0usize, 2, 3] {
        let mut share = setup.servers[i].extract_share(&setup.params, id);
        if i == 2 {
            share.d = share.d.add(&G1Projective::generator()); // corrupted
        }
        let ok = verify_share(
            &setup.params,
            id,
            &share,
            &setup.servers[i].verification_key,
        );
        println!(
            "server {}: share {}",
            setup.servers[i].index(),
            if ok { "verified" } else { "REJECTED (corrupt)" }
        );
        if ok {
            responses.push(share);
        }
    }

    // Two good shares are not enough; fetch one more from server 5.
    assert_eq!(responses.len(), 2);
    let extra = setup.servers[4].extract_share(&setup.params, id);
    assert!(verify_share(
        &setup.params,
        id,
        &extra,
        &setup.servers[4].verification_key
    ));
    responses.push(extra);
    println!("collected 3 verified shares; combining...");

    let partial = combine_shares(&responses, 3).expect("threshold met");
    assert!(
        partial.validate(&setup.params, id),
        "combined key must be s·Q_ID"
    );
    println!("partial private key reconstructed and validated against P_pub.");

    // Business as usual from here: the sensor signs with McCLS.
    let scheme = McCls::new();
    let keys = scheme.generate_key_pair(&setup.params, &mut rng);
    let sig = scheme.sign(&setup.params, id, &partial, &keys, b"temp=23C", &mut rng);
    assert!(scheme
        .verify(&setup.params, id, &keys.public, b"temp=23C", &sig)
        .is_ok());
    println!("McCLS signature under the threshold-extracted key verifies.");
}
