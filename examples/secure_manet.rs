//! A mobile ad hoc network protected by *real* McCLS signatures.
//!
//! Runs the paper's 20-node scenario twice — plain AODV and
//! McCLS-secured AODV — with `real_crypto = true`, so every routing
//! control packet genuinely carries and verifies a BLS12-381
//! certificateless signature (no modeling shortcut).
//!
//! Run with: `cargo run --release --example secure_manet`

use mccls::aodv::{Network, ScenarioConfig};
use mccls::sim::SimDuration;

fn main() {
    let speed = 10.0;
    println!(
        "20 nodes, 1500x300 m, random waypoint @ {speed} m/s, 10 CBR flows, 20 s, real BLS12-381 crypto"
    );

    let mut plain = ScenarioConfig::paper_baseline(speed, 99);
    plain.duration = SimDuration::from_secs(20);
    plain.real_crypto = true;
    let t = std::time::Instant::now();
    let plain_metrics = Network::new(plain).run();
    println!("\nAODV   ({:>6.2?} wall): {plain_metrics}", t.elapsed());

    let mut secured = ScenarioConfig::paper_baseline(speed, 99).secured();
    secured.duration = SimDuration::from_secs(20);
    secured.real_crypto = true;
    let t = std::time::Instant::now();
    let secured_metrics = Network::new(secured).run();
    println!("McCLS  ({:>6.2?} wall): {secured_metrics}", t.elapsed());
    println!(
        "\nsecured run produced {} signatures and verified {} ({} rejected).",
        secured_metrics.signatures_made,
        secured_metrics.signatures_checked,
        secured_metrics.auth_rejected
    );
    assert!(secured_metrics.signatures_checked > 0);
    assert_eq!(
        secured_metrics.auth_rejected, 0,
        "honest network: nothing should be rejected"
    );
}
