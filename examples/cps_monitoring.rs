//! The paper's motivating scenario: a cyber-physical monitoring field.
//!
//! Sensor nodes stream readings to a sink over an ad hoc network. Each
//! report is authenticated with McCLS; the sink batch-verifies a window
//! of reports at a fraction of the one-by-one pairing cost, and a node
//! under a real-time deadline signs with precomputed offline tokens
//! (zero group operations in the online phase).
//!
//! Run with: `cargo run --release --example cps_monitoring`

// Demo code: panicking on a broken invariant is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Instant;

use mccls::cls::{
    batch_verify, BatchItem, CertificatelessScheme, McCls, OfflineSigner, VerifierCache,
};
use mccls_rng::SeedableRng;

fn main() {
    let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(11);
    let scheme = McCls::new();
    let (params, kgc) = scheme.setup(&mut rng);

    // A field of ten sensors, each with its own certificateless keys.
    let sensors: Vec<_> = (0..10)
        .map(|i| {
            let id = format!("sensor-{i:02}").into_bytes();
            let partial = scheme.extract_partial_private_key(&kgc, &id);
            let keys = scheme.generate_key_pair(&params, &mut rng);
            (id, partial, keys)
        })
        .collect();

    // Each sensor signs one reading.
    let readings: Vec<(Vec<u8>, Vec<u8>)> = sensors
        .iter()
        .enumerate()
        .map(|(i, (id, _, _))| {
            (
                id.clone(),
                format!("t=17:03:0{i} temp={}C", 20 + i).into_bytes(),
            )
        })
        .collect();
    let sigs: Vec<_> = sensors
        .iter()
        .zip(&readings)
        .map(|((id, partial, keys), (_, msg))| {
            scheme.sign(&params, id, partial, keys, msg, &mut rng)
        })
        .collect();

    // Sink, path A: verify one by one (with the pairing cache warm).
    let mut cache = VerifierCache::new();
    for ((id, _, keys), ((_, msg), sig)) in sensors.iter().zip(readings.iter().zip(&sigs)) {
        assert!(cache.verify(&params, id, &keys.public, msg, sig).is_ok());
    }
    let t = Instant::now();
    for ((id, _, keys), ((_, msg), sig)) in sensors.iter().zip(readings.iter().zip(&sigs)) {
        assert!(cache.verify(&params, id, &keys.public, msg, sig).is_ok());
    }
    let one_by_one = t.elapsed();

    // Sink, path B: batch-verify the whole window.
    let batch: Vec<BatchItem> = sensors
        .iter()
        .zip(readings.iter().zip(&sigs))
        .map(|((id, _, keys), ((_, msg), sig))| BatchItem {
            id,
            public: &keys.public,
            msg,
            sig,
        })
        .collect();
    let t = Instant::now();
    assert!(batch_verify(&params, &batch, &mut rng).all_valid());
    let batched = t.elapsed();
    println!(
        "sink verified {} reports: {one_by_one:?} one-by-one (cached) vs {batched:?} batched",
        sensors.len()
    );

    // A tampered reading no longer poisons the batch: the bisection
    // fallback pins the exact index while the rest stay accepted.
    let mut poisoned = batch.clone();
    poisoned[4].msg = b"t=17:03:04 temp=9999C";
    let outcome = batch_verify(&params, &poisoned, &mut rng);
    assert!(!outcome.all_valid());
    assert_eq!(outcome.invalid_indices(), vec![4]);
    println!(
        "tampered reading isolated at index 4 in {} bisection checks.",
        outcome.stats().isolation_checks
    );

    // Deadline path: offline tokens make the online signature free.
    let (id, partial, keys) = &sensors[0];
    let mut signer = OfflineSigner::precompute(&params, partial, keys, 100, &mut rng);
    let t = Instant::now();
    let mut last = None;
    for i in 0..100u32 {
        last = signer.sign_online(&i.to_be_bytes());
    }
    let online = t.elapsed();
    let sig = last.expect("tokens remained");
    assert!(scheme
        .verify(&params, id, &keys.public, &99u32.to_be_bytes(), &sig)
        .is_ok());
    println!(
        "100 online signatures in {online:?} ({:?}/signature) — no group operations.",
        online / 100
    );
}
