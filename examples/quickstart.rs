//! Quickstart: the complete McCLS certificateless key hierarchy and a
//! sign/verify round trip, including the wire encoding.
//!
//! Run with: `cargo run --release --example quickstart`

// Demo code: panicking on a broken invariant is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mccls::cls::{CertificatelessScheme, McCls, Signature, VerifierCache};
use mccls_rng::SeedableRng;

fn main() {
    let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(7);
    let scheme = McCls::new();

    // 1. The Key Generation Center runs Setup: master secret s,
    //    public parameters (P, P_pub = s·P).
    let (params, kgc) = scheme.setup(&mut rng);
    println!("KGC ready; P_pub published.");

    // 2. A node asks the KGC for its partial private key
    //    D_ID = s·H1(ID). Unlike ID-PKC there is no key escrow issue
    //    *by design*: the KGC never sees the full private key.
    let id = b"sensor-node-17";
    let partial = scheme.extract_partial_private_key(&kgc, id);
    assert!(partial.validate(&params, id), "KGC extraction checks out");
    println!(
        "partial private key for {:?} extracted and validated.",
        "sensor-node-17"
    );

    // 3. The node generates its own secret value x and public key
    //    P_ID = x·P_pub. No certificate is ever issued or checked.
    let keys = scheme.generate_key_pair(&params, &mut rng);
    println!(
        "node key pair generated ({} bytes of public key).",
        keys.public.encoded_len()
    );

    // 4. CL-Sign a message (e.g. an AODV route request it originates).
    let msg = b"RREQ origin=sensor-node-17 dest=sink-3 seq=42";
    let sig = scheme.sign(&params, id, &partial, &keys, msg, &mut rng);
    println!(
        "signed {} byte message -> {} byte signature.",
        msg.len(),
        sig.encoded_len()
    );

    // 5. CL-Verify — anyone holding the public parameters can check.
    assert!(scheme.verify(&params, id, &keys.public, msg, &sig).is_ok());
    assert!(scheme
        .verify(&params, id, &keys.public, b"tampered", &sig)
        .is_err());
    println!("verification: genuine accepted, tampered rejected.");

    // 6. The wire form survives a round trip.
    let bytes = sig.to_bytes();
    let parsed = Signature::from_bytes(&bytes).expect("canonical encoding");
    assert_eq!(parsed, sig);
    println!("wire round trip ok ({} bytes).", bytes.len());

    // 7. Repeated verification of the same peer costs one pairing with
    //    the cached constant e(Q_ID, P_pub).
    let mut cache = VerifierCache::new();
    assert!(cache.verify(&params, id, &keys.public, msg, &sig).is_ok());
    let t = std::time::Instant::now();
    assert!(cache.verify(&params, id, &keys.public, msg, &sig).is_ok());
    println!(
        "cached verify: {:?} (one pairing + three scalar mults).",
        t.elapsed()
    );
}
