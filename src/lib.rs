//! Umbrella crate for the McCLS reproduction workspace.
//!
//! Re-exports the public APIs of the member crates so examples and
//! downstream users can depend on a single crate:
//!
//! * [`hash`] — SHA-256/512, HMAC, XMD message expansion ([`mccls_hash`]),
//! * [`pairing`] — from-scratch BLS12-381 ([`mccls_pairing`]),
//! * [`cls`] — the McCLS scheme and the AP/ZWXF/YHG baselines
//!   ([`mccls_core`]),
//! * [`sim`] — the discrete-event MANET simulator ([`mccls_sim`]),
//! * [`aodv`] — AODV, the McCLS-secured extension, attacks, and the
//!   experiment harness ([`mccls_aodv`]).
//!
//! # Quickstart
//!
//! ```
//! use mccls::cls::{CertificatelessScheme, McCls};
//! use mccls_rng::SeedableRng;
//!
//! let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(7);
//! let scheme = McCls::new();
//! let (params, kgc) = scheme.setup(&mut rng);
//! let partial = scheme.extract_partial_private_key(&kgc, b"node-1");
//! let keypair = scheme.generate_key_pair(&params, &mut rng);
//! let sig = scheme.sign(&params, b"node-1", &partial, &keypair, b"hello CPS", &mut rng);
//! assert!(scheme.verify(&params, b"node-1", &keypair.public, b"hello CPS", &sig).is_ok());
//! ```

#![forbid(unsafe_code)]

pub use mccls_aodv as aodv;
pub use mccls_core as cls;
pub use mccls_hash as hash;
pub use mccls_pairing as pairing;
pub use mccls_sim as sim;
