//! Cross-scheme integration: signatures never verify under a different
//! scheme, identity, key, or message, and every wire encoding is
//! injective and validated.

use mccls::cls::{all_schemes, CertificatelessScheme, Signature};
use mccls_rng::SeedableRng;

#[test]
fn signatures_do_not_cross_schemes() {
    let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(9);
    let schemes = all_schemes();
    // One key world per scheme.
    let mut worlds = Vec::new();
    for scheme in &schemes {
        let (params, kgc) = scheme.setup(&mut rng);
        let partial = scheme.extract_partial_private_key(&kgc, b"node");
        let keys = scheme.generate_key_pair(&params, &mut rng);
        let sig = scheme.sign(&params, b"node", &partial, &keys, b"msg", &mut rng);
        worlds.push((params, keys, sig));
    }
    for (i, scheme) in schemes.iter().enumerate() {
        for (j, (params, keys, sig)) in worlds.iter().enumerate() {
            let accepted = scheme.verify(params, b"node", &keys.public, b"msg", sig);
            assert_eq!(
                accepted.is_ok(),
                i == j,
                "{} x world {} must {}",
                scheme.name(),
                j,
                if i == j { "accept" } else { "reject" }
            );
        }
    }
}

#[test]
fn wire_encodings_are_injective_and_validated() {
    let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(10);
    for scheme in all_schemes() {
        let (params, kgc) = scheme.setup(&mut rng);
        let partial = scheme.extract_partial_private_key(&kgc, b"node");
        let keys = scheme.generate_key_pair(&params, &mut rng);
        let sig = scheme.sign(&params, b"node", &partial, &keys, b"msg", &mut rng);

        let bytes = sig.to_bytes();
        assert_eq!(bytes.len(), sig.encoded_len(), "{}", scheme.name());
        assert_eq!(Signature::from_bytes(&bytes), Some(sig.clone()));

        // Truncation is rejected.
        assert_eq!(Signature::from_bytes(&bytes[..bytes.len() - 1]), None);
        // Unknown tags are rejected.
        let mut bad_tag = bytes.clone();
        bad_tag[0] = 0xFF;
        assert_eq!(Signature::from_bytes(&bad_tag), None);
        // Point corruption is rejected (flipping a byte inside a
        // compressed point makes it non-canonical or off-curve with
        // overwhelming probability, or changes the signature).
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x01;
        match Signature::from_bytes(&corrupt) {
            None => {}
            Some(parsed) => {
                assert!(
                    scheme
                        .verify(&params, b"node", &keys.public, b"msg", &parsed)
                        .is_err(),
                    "{}: corrupted signature must not verify",
                    scheme.name()
                );
            }
        }
    }
}

#[test]
fn empty_and_large_messages_round_trip() {
    let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(11);
    let big = vec![0xAB; 64 * 1024];
    for scheme in all_schemes() {
        let (params, kgc) = scheme.setup(&mut rng);
        let partial = scheme.extract_partial_private_key(&kgc, b"node");
        let keys = scheme.generate_key_pair(&params, &mut rng);
        for msg in [&b""[..], &big] {
            let sig = scheme.sign(&params, b"node", &partial, &keys, msg, &mut rng);
            assert!(
                scheme
                    .verify(&params, b"node", &keys.public, msg, &sig)
                    .is_ok(),
                "{} with {} byte message",
                scheme.name(),
                msg.len()
            );
        }
    }
}

#[test]
fn public_key_replacement_needs_no_authority() {
    // The defining certificateless property: a user rotates its key pair
    // unilaterally (no certificate re-issuance), keeping the same
    // identity and partial private key. Old signatures must stop
    // verifying under the new public key and vice versa.
    let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(13);
    for scheme in all_schemes() {
        let (params, kgc) = scheme.setup(&mut rng);
        let partial = scheme.extract_partial_private_key(&kgc, b"node");
        let old_keys = scheme.generate_key_pair(&params, &mut rng);
        let old_sig = scheme.sign(&params, b"node", &partial, &old_keys, b"m", &mut rng);

        let new_keys = scheme.generate_key_pair(&params, &mut rng);
        let new_sig = scheme.sign(&params, b"node", &partial, &new_keys, b"m", &mut rng);

        assert!(scheme
            .verify(&params, b"node", &new_keys.public, b"m", &new_sig)
            .is_ok());
        assert!(scheme
            .verify(&params, b"node", &old_keys.public, b"m", &old_sig)
            .is_ok());
        assert!(
            scheme
                .verify(&params, b"node", &new_keys.public, b"m", &old_sig)
                .is_err(),
            "{}: old signature must not verify under the rotated key",
            scheme.name()
        );
        assert!(
            scheme
                .verify(&params, b"node", &old_keys.public, b"m", &new_sig)
                .is_err(),
            "{}: new signature must not verify under the retired key",
            scheme.name()
        );
    }
}

#[test]
fn batch_api_spans_many_signers() {
    use mccls::cls::{batch_verify, BatchItem, McCls};
    let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(14);
    let scheme = McCls::new();
    let (params, kgc) = scheme.setup(&mut rng);
    let mut storage = Vec::new();
    for i in 0..8 {
        let id = format!("n{i}").into_bytes();
        let partial = scheme.extract_partial_private_key(&kgc, &id);
        let keys = scheme.generate_key_pair(&params, &mut rng);
        let msg = format!("payload {i}").into_bytes();
        let sig = scheme.sign(&params, &id, &partial, &keys, &msg, &mut rng);
        storage.push((id, keys, msg, sig));
    }
    let batch: Vec<BatchItem> = storage
        .iter()
        .map(|(id, keys, msg, sig)| BatchItem {
            id,
            public: &keys.public,
            msg,
            sig,
        })
        .collect();
    assert!(batch_verify(&params, &batch, &mut rng).all_valid());
}

#[test]
fn unicode_and_binary_identities() {
    let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(12);
    let ids: Vec<&[u8]> = vec![b"", "идентичность".as_bytes(), &[0u8, 255, 1, 254]];
    for scheme in all_schemes() {
        let (params, kgc) = scheme.setup(&mut rng);
        for id in &ids {
            let partial = scheme.extract_partial_private_key(&kgc, id);
            let keys = scheme.generate_key_pair(&params, &mut rng);
            let sig = scheme.sign(&params, id, &partial, &keys, b"m", &mut rng);
            assert!(scheme.verify(&params, id, &keys.public, b"m", &sig).is_ok());
        }
    }
}
