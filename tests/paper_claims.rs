//! Integration tests asserting the paper's qualitative claims, table by
//! table and figure by figure (small/short configurations of the same
//! harness the `fig*` binaries run at full scale).

// Tests may panic freely; that is how they fail.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mccls::aodv::experiment::{sweep, AttackKind};
use mccls::aodv::{Metrics, Network, Protocol, ScenarioConfig};
use mccls::cls::{all_schemes, ops};
use mccls::sim::SimDuration;
use mccls_rng::SeedableRng;

/// Table 1, McCLS row: sign = 2s / 0p, verify = 1p (+1 cacheable) —
/// the lowest pairing count of all four schemes.
#[test]
fn table1_mccls_has_lowest_pairing_cost() {
    let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(42);
    let mut verify_pairings = Vec::new();
    for scheme in all_schemes() {
        let (params, kgc) = scheme.setup(&mut rng);
        let partial = scheme.extract_partial_private_key(&kgc, b"n");
        let keys = scheme.generate_key_pair(&params, &mut rng);
        let (sig, sign_counts) =
            ops::measure(|| scheme.sign(&params, b"n", &partial, &keys, b"m", &mut rng));
        let (ok, verify_counts) =
            ops::measure(|| scheme.verify(&params, b"n", &keys.public, b"m", &sig));
        assert!(ok.is_ok(), "{}", scheme.name());
        if scheme.name() == "McCLS" {
            assert_eq!(sign_counts.pairings, 0, "McCLS signs without pairings");
        }
        verify_pairings.push((scheme.name(), verify_counts.pairings));
    }
    let mccls = verify_pairings
        .iter()
        .find(|(n, _)| *n == "McCLS")
        .unwrap()
        .1;
    for (name, p) in &verify_pairings {
        if *name != "McCLS" && *name != "YHG" {
            assert!(mccls < *p, "McCLS ({mccls}p) must beat {name} ({p}p)");
        }
    }
    // YHG ties at 2p uncached; with the verifier cache McCLS needs 1.
}

fn short_sweep(protocol: Protocol, attack: AttackKind) -> Vec<Metrics> {
    // Compare two *mobile* speeds: at 0 m/s an unluckily partitioned
    // topology never heals, which can invert the PDR ordering for a
    // given seed even though the churn-driven decay is real.
    sweep(protocol, attack, &[5.0, 20.0], 3, 555)
        .points
        .into_iter()
        .map(|p| p.metrics)
        .collect()
}

/// Fig. 1: PDR decreases with speed; McCLS tracks AODV (no collapse).
#[test]
fn fig1_pdr_decays_with_speed_and_mccls_tracks_aodv() {
    let aodv = short_sweep(Protocol::Aodv, AttackKind::None);
    let mccls = short_sweep(Protocol::McClsSecured, AttackKind::None);
    assert!(
        aodv[0].packet_delivery_ratio() > aodv[1].packet_delivery_ratio(),
        "PDR must decay with speed: {} vs {}",
        aodv[0].packet_delivery_ratio(),
        aodv[1].packet_delivery_ratio()
    );
    for (a, m) in aodv.iter().zip(&mccls) {
        let gap = (a.packet_delivery_ratio() - m.packet_delivery_ratio()).abs();
        assert!(
            gap < 0.1,
            "McCLS must not degrade PDR substantially (gap {gap})"
        );
    }
}

/// Fig. 2: RREQ ratio rises with speed.
#[test]
fn fig2_rreq_ratio_rises_with_speed() {
    let aodv = short_sweep(Protocol::Aodv, AttackKind::None);
    assert!(aodv[1].rreq_ratio() > aodv[0].rreq_ratio());
}

/// Fig. 4/5 black hole: plain AODV loses packets to the attackers,
/// McCLS loses none.
#[test]
fn fig45_black_hole_claim() {
    let aodv = short_sweep(Protocol::Aodv, AttackKind::BlackHole2);
    let mccls = short_sweep(Protocol::McClsSecured, AttackKind::BlackHole2);
    let aodv_dropped: u64 = aodv.iter().map(|m| m.attacker_dropped).sum();
    let mccls_dropped: u64 = mccls.iter().map(|m| m.attacker_dropped).sum();
    assert!(aodv_dropped > 0, "black holes must absorb AODV traffic");
    assert_eq!(mccls_dropped, 0, "McCLS drop ratio must be zero");
}

/// Fig. 4/5 rushing: same claim for the rushing attack.
#[test]
fn fig45_rushing_claim() {
    let aodv = short_sweep(Protocol::Aodv, AttackKind::Rushing2);
    let mccls = short_sweep(Protocol::McClsSecured, AttackKind::Rushing2);
    let aodv_dropped: u64 = aodv.iter().map(|m| m.attacker_dropped).sum();
    let mccls_dropped: u64 = mccls.iter().map(|m| m.attacker_dropped).sum();
    assert!(
        aodv_dropped > 0,
        "rushing attackers must absorb AODV traffic"
    );
    assert_eq!(mccls_dropped, 0, "McCLS drop ratio must be zero");
}

/// The secured protocol's overhead exists but does not break delivery
/// (Fig. 1/3 combined claim: "without causing any substantial
/// degradation of the network performance").
#[test]
fn mccls_overhead_is_modest() {
    let mut plain = ScenarioConfig::paper_baseline(10.0, 321);
    plain.duration = SimDuration::from_secs(60);
    let mut secured = ScenarioConfig::paper_baseline(10.0, 321).secured();
    secured.duration = SimDuration::from_secs(60);
    let p = Network::new(plain).run();
    let s = Network::new(secured).run();
    assert!(s.signatures_made > 0);
    assert!(
        s.packet_delivery_ratio() > p.packet_delivery_ratio() - 0.05,
        "secured PDR {} vs plain {}",
        s.packet_delivery_ratio(),
        p.packet_delivery_ratio()
    );
}
