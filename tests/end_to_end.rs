//! Cross-crate integration: the full pipeline from the KGC key
//! hierarchy through real-crypto network simulation.

// Tests may panic freely; that is how they fail.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mccls::aodv::{Behavior, Network, ScenarioConfig};
use mccls::cls::{CertificatelessScheme, McCls, Signature, VerifierCache};
use mccls::sim::SimDuration;
use mccls_rng::SeedableRng;

#[test]
fn full_key_hierarchy_and_signature_lifecycle() {
    let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(1);
    let scheme = McCls::new();
    let (params, kgc) = scheme.setup(&mut rng);

    // Enroll a fleet of nodes, each with its own identity.
    let ids: Vec<Vec<u8>> = (0..5u8).map(|i| format!("node-{i}").into_bytes()).collect();
    let mut cache = VerifierCache::new();
    for id in &ids {
        let partial = scheme.extract_partial_private_key(&kgc, id);
        assert!(partial.validate(&params, id));
        let keys = scheme.generate_key_pair(&params, &mut rng);
        let msg = [id.as_slice(), b"|payload"].concat();
        let sig = scheme.sign(&params, id, &partial, &keys, &msg, &mut rng);

        // Wire round trip, then verify both ways.
        let parsed = Signature::from_bytes(&sig.to_bytes()).expect("canonical");
        assert!(scheme
            .verify(&params, id, &keys.public, &msg, &parsed)
            .is_ok());
        assert!(cache
            .verify(&params, id, &keys.public, &msg, &parsed)
            .is_ok());
        // Identity binding across the fleet.
        for other in &ids {
            if other != id {
                assert!(scheme
                    .verify(&params, other, &keys.public, &msg, &sig)
                    .is_err());
            }
        }
    }
    assert_eq!(cache.len(), ids.len());
}

#[test]
fn real_crypto_simulation_smoke() {
    // A short secured run with actual BLS12-381 signatures on every
    // routing control packet: traffic must flow and no honest packet
    // may be rejected.
    let mut cfg = ScenarioConfig::paper_baseline(5.0, 77).secured();
    cfg.duration = SimDuration::from_secs(5);
    cfg.real_crypto = true;
    let metrics = Network::new(cfg).run();
    assert!(metrics.data_sent > 0);
    assert!(metrics.data_delivered > 0, "{metrics}");
    assert!(metrics.signatures_checked > 0);
    assert_eq!(metrics.auth_rejected, 0, "{metrics}");
}

#[test]
fn real_crypto_rejects_real_attackers() {
    // With real signatures, a forging black hole's RREPs must actually
    // fail BLS12-381 verification — not just be modeled as failing.
    let mut cfg = ScenarioConfig::paper_baseline(5.0, 78)
        .secured()
        .with_attackers(Behavior::ForgingBlackHole, 2);
    cfg.duration = SimDuration::from_secs(5);
    cfg.real_crypto = true;
    let metrics = Network::new(cfg).run();
    assert!(
        metrics.auth_rejected > 0,
        "forged signatures must be rejected: {metrics}"
    );
    assert_eq!(metrics.attacker_dropped, 0, "{metrics}");
}

#[test]
fn model_and_real_crypto_agree_on_outcomes() {
    // The fast modeled provider must produce the same *qualitative*
    // outcome as the ground-truth provider on the same scenario:
    // attackers neutralized, honest traffic untouched.
    let build = |real: bool| {
        let mut cfg = ScenarioConfig::paper_baseline(5.0, 79)
            .secured()
            .with_attackers(Behavior::Rushing, 2);
        cfg.duration = SimDuration::from_secs(5);
        cfg.real_crypto = real;
        Network::new(cfg).run()
    };
    let modeled = build(false);
    let real = build(true);
    assert_eq!(modeled.attacker_dropped, 0);
    assert_eq!(real.attacker_dropped, 0);
    // Identical scenario seed and identical accept/reject behaviour ⇒
    // identical packet-level outcomes.
    assert_eq!(modeled.data_sent, real.data_sent);
    assert_eq!(modeled.data_delivered, real.data_delivered);
    assert_eq!(modeled.auth_rejected, real.auth_rejected);
}
