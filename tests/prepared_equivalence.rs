//! The prepared-path equivalence contract: for every scheme, the
//! pairing products the verifier evaluates over cached [`G2Prepared`]
//! line coefficients agree **bit-for-bit** with the same products
//! computed through individual, unprepared `pairing()` calls — and the
//! accept/reject decision derived from the unprepared reconstruction
//! matches what `CertificatelessScheme::verify` returns, on valid and
//! tampered signatures alike.

use mccls::cls::params::{h2_scalar, DST_HW};
use mccls::cls::{all_schemes, Signature, SystemParams, UserPublicKey};
use mccls::pairing::{
    hash_to_g1, multi_miller_loop, pairing, G1Projective, G2Prepared, G2Projective, Gt,
};
use mccls_rng::SeedableRng;

/// Evaluates a pairing product both ways — unprepared (one `pairing()`
/// per factor, multiplied in Gt) and prepared (one multi-Miller loop
/// over cached lines, one shared final exponentiation) — and asserts
/// the two Gt elements are byte-identical before returning one.
fn product_both_ways(pairs: &[(G1Projective, G2Projective)], context: &str) -> Gt {
    let mut unprepared = Gt::identity();
    for (p, q) in pairs {
        unprepared = unprepared.mul(&pairing(&p.to_affine(), &q.to_affine()));
    }
    let affine: Vec<_> = pairs
        .iter()
        .map(|(p, q)| (p.to_affine(), G2Prepared::from_projective(q)))
        .collect();
    let refs: Vec<_> = affine.iter().map(|(p, q)| (p, q)).collect();
    let prepared = multi_miller_loop(&refs).final_exponentiation();
    assert_eq!(
        unprepared.to_bytes(),
        prepared.to_bytes(),
        "{context}: prepared and unprepared products must agree bit-for-bit"
    );
    unprepared
}

/// Reconstructs the accept/reject decision of `scheme.verify` for a
/// given signature using only unprepared `pairing()` calls, checking
/// along the way that every product also matches its prepared form.
fn unprepared_decision(
    params: &SystemParams,
    id: &[u8],
    public: &UserPublicKey,
    msg: &[u8],
    sig: &Signature,
) -> bool {
    let q_id = params.hash_identity(id);
    let p = params.p();
    match sig {
        Signature::McCls { v, s, r } => {
            let h = h2_scalar(&[
                b"mccls",
                msg,
                &r.to_affine().to_compressed(),
                &public.to_bytes(),
            ]);
            let Some(h_inv) = h.invert() else {
                return false;
            };
            let lhs_g2 = p.mul_scalar(v).sub(&r.mul_scalar(&h));
            let s_over_h = s.mul_scalar(&h_inv);
            if s_over_h.is_identity() || lhs_g2.is_identity() {
                return false;
            }
            let lhs = product_both_ways(&[(s_over_h, lhs_g2)], "McCLS lhs");
            let rhs = product_both_ways(&[(q_id, params.p_pub)], "McCLS rhs");
            lhs.to_bytes() == rhs.to_bytes()
        }
        Signature::Ap { u, v } => {
            let Some(x_a) = public.secondary else {
                return false;
            };
            let y_a = public.primary;
            let g = params.g();
            let wf_left = product_both_ways(&[(x_a, params.p_pub)], "AP well-formed left");
            let wf_right = product_both_ways(&[(g, y_a)], "AP well-formed right");
            if wf_left.to_bytes() != wf_right.to_bytes() {
                return false;
            }
            let e_u = product_both_ways(&[(*u, p)], "AP e(U, P)");
            let e_qy = product_both_ways(&[(q_id, y_a)], "AP e(Q_A, Y_A)");
            let rho = e_u.mul(&e_qy.pow(v).inverse());
            h2_scalar(&[b"ap", msg, &rho.to_bytes()]) == *v
        }
        Signature::Zwxf { u, v } => {
            // Rebuild the two message points exactly as the scheme does:
            // length-prefixed (msg, id, public, U) material, domain-
            // separated by a trailing 0/1 byte.
            let mut material = Vec::new();
            for part in [
                msg,
                id,
                &public.to_bytes()[..],
                &u.to_affine().to_compressed()[..],
            ] {
                material.extend_from_slice(&(part.len() as u64).to_be_bytes());
                material.extend_from_slice(part);
            }
            let mut w_input = material.clone();
            w_input.push(0);
            let mut wp_input = material;
            wp_input.push(1);
            let w = hash_to_g1(&w_input, DST_HW);
            let wp = hash_to_g1(&wp_input, DST_HW);
            let lhs = product_both_ways(&[(*v, p)], "ZWXF e(V, P)");
            let rhs = product_both_ways(
                &[(q_id, params.p_pub), (w, *u), (wp, public.primary)],
                "ZWXF rhs product",
            );
            lhs.to_bytes() == rhs.to_bytes()
        }
        Signature::Yhg { u, v } => {
            let h = h2_scalar(&[
                b"yhg",
                msg,
                &u.to_affine().to_compressed(),
                &public.to_bytes(),
            ]);
            let lhs = product_both_ways(&[(*v, p)], "YHG e(V, P)");
            let rhs = product_both_ways(
                &[(
                    u.add(&q_id.mul_scalar(&h)),
                    params.p_pub.add(&public.primary),
                )],
                "YHG rhs",
            );
            lhs.to_bytes() == rhs.to_bytes()
        }
    }
}

#[test]
fn prepared_verify_agrees_with_unprepared_path_for_all_schemes() {
    let mut rng = mccls_rng::rngs::StdRng::seed_from_u64(0x9E9A);
    for scheme in all_schemes() {
        let (params, kgc) = scheme.setup(&mut rng);
        for case in 0u32..3 {
            let id = format!("node-{case}").into_bytes();
            let partial = scheme.extract_partial_private_key(&kgc, &id);
            let keys = scheme.generate_key_pair(&params, &mut rng);
            let msg = format!("payload {case}").into_bytes();
            let sig = scheme.sign(&params, &id, &partial, &keys, &msg, &mut rng);

            // Valid signature: both paths accept.
            let prepared = scheme
                .verify(&params, &id, &keys.public, &msg, &sig)
                .is_ok();
            let unprepared = unprepared_decision(&params, &id, &keys.public, &msg, &sig);
            assert!(prepared, "{}: honest signature rejected", scheme.name());
            assert_eq!(
                prepared,
                unprepared,
                "{}: paths disagree on a valid signature",
                scheme.name()
            );

            // Tampered message: both paths reject, for the same reason
            // (the pairing products still agree bit-for-bit; only the
            // equation's balance changes).
            let bad_msg = b"tampered".to_vec();
            let prepared = scheme
                .verify(&params, &id, &keys.public, &bad_msg, &sig)
                .is_ok();
            let unprepared = unprepared_decision(&params, &id, &keys.public, &bad_msg, &sig);
            assert!(!prepared, "{}: tampered message accepted", scheme.name());
            assert_eq!(
                prepared,
                unprepared,
                "{}: paths disagree on a tampered signature",
                scheme.name()
            );

            // Foreign identity: same agreement under a wrong Q_ID.
            let prepared = scheme
                .verify(&params, b"someone-else", &keys.public, &msg, &sig)
                .is_ok();
            let unprepared =
                unprepared_decision(&params, b"someone-else", &keys.public, &msg, &sig);
            assert_eq!(
                prepared,
                unprepared,
                "{}: paths disagree on a foreign identity",
                scheme.name()
            );
        }
    }
}
